(* Network-wide binary consensus over an (enhanced) absMAC.

   The paper (Theorem 5.4 / Corollary 5.5) obtains consensus by running
   Newport's wPAXOS [44] over the MAC layer in O(D_G * f_ack) time, using
   only the acknowledgment bound.  wPAXOS is a full wireless Paxos; the
   paper uses nothing but its runtime profile, so — as documented in
   DESIGN.md — we substitute a flood-max protocol with the same
   O(D * f_ack) absMAC-time profile and the same three guarantees of the
   problem statement (Section 4.5):

     agreement    all deciders decide the same value,
     validity     the decided value is some node's initial value,
     termination  every non-faulty node eventually decides.

   Protocol: every node repeatedly broadcasts the largest (id, value)
   proposal it has seen (its own initially).  The enhanced MAC gives
   access to time and to f_ack, so after rounds_bound * f_ack time units —
   enough for D_G sequential acknowledged hops w.h.p. — each node decides
   the value of the largest id it has seen.  Decisions are irrevocable.

   Crash faults: a crashed node never decides; the flood routes around it
   as long as the strong graph on the surviving nodes stays connected
   (checked by the experiments' fault injector). *)

type t = {
  mac : Mac_driver.t;
  initial : bool array;
  best : (int * bool) array;          (* largest (id, value) seen *)
  decision : bool option array;
  decide_at : int;                    (* time units until decision *)
  decided_slot : int option array;
  current_bcast : int option array;   (* data of the ongoing bcast, if any *)
}

(* Proposals travel in the payload's data field: id * 2 + value. *)
let encode (id, value) = (id * 2) + if value then 1 else 0

let decode data = (data / 2, data mod 2 = 1)

let create mac ~initial ~rounds_bound =
  if Array.length initial <> mac.Mac_driver.n then
    invalid_arg "Consensus.create: initial values size mismatch";
  if rounds_bound < 1 then invalid_arg "Consensus.create: rounds_bound < 1";
  let t =
    { mac;
      initial = Array.copy initial;
      best = Array.init mac.Mac_driver.n (fun v -> (v, initial.(v)));
      decision = Array.make mac.Mac_driver.n None;
      decide_at = rounds_bound * mac.Mac_driver.bounds.Sinr_mac.Absmac_intf.f_ack;
      decided_slot = Array.make mac.Mac_driver.n None;
      current_bcast = Array.make mac.Mac_driver.n None }
  in
  mac.Mac_driver.set_handlers
    { Sinr_mac.Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          let proposal = decode payload.Sinr_mac.Events.data in
          if proposal > t.best.(node) then begin
            t.best.(node) <- proposal;
            (* Enhanced-MAC abort: don't finish broadcasting a proposal
               that is already superseded — the new maximum should travel
               one hop per f_ack, not per 2*f_ack. *)
            match t.current_bcast.(node) with
            | Some data when data <> encode proposal && t.mac.Mac_driver.busy ~node ->
              t.mac.Mac_driver.abort ~node;
              t.current_bcast.(node) <- None
            | Some _ | None -> ()
          end);
      on_ack = (fun ~node ~payload:_ -> t.current_bcast.(node) <- None) };
  t

let step t =
  let now = t.mac.Mac_driver.now () in
  for node = 0 to t.mac.Mac_driver.n - 1 do
    if t.mac.Mac_driver.alive ~node then begin
      if now >= t.decide_at && t.decision.(node) = None then begin
        (* The single irrevocable decide action. *)
        t.decision.(node) <- Some (snd t.best.(node));
        t.decided_slot.(node) <- Some now
      end;
      if t.decision.(node) = None && not (t.mac.Mac_driver.busy ~node) then begin
        let data = encode t.best.(node) in
        t.current_bcast.(node) <- Some data;
        ignore (t.mac.Mac_driver.bcast ~node ~data)
      end
    end
  done;
  t.mac.Mac_driver.step ()

let decision t ~node = t.decision.(node)
let decided_slot t ~node = t.decided_slot.(node)
let initial_values t = Array.copy t.initial

let all_decided t =
  let ok = ref true in
  for node = 0 to t.mac.Mac_driver.n - 1 do
    if t.mac.Mac_driver.alive ~node && t.decision.(node) = None then ok := false
  done;
  !ok

(* Run to termination of all alive nodes; returns the completion time. *)
let run t ~max_steps =
  let steps = ref 0 in
  while (not (all_decided t)) && !steps < max_steps do
    step t;
    incr steps
  done;
  if all_decided t then Some (t.mac.Mac_driver.now ()) else None

(* The three correctness properties over the current state. *)
let agreement t =
  let seen = ref None in
  let ok = ref true in
  Array.iter
    (function
      | None -> ()
      | Some v ->
        (match !seen with
         | None -> seen := Some v
         | Some w -> if v <> w then ok := false))
    t.decision;
  !ok

let validity t =
  Array.for_all
    (function
      | None -> true
      | Some v -> Array.exists (fun init -> init = v) t.initial)
    t.decision
