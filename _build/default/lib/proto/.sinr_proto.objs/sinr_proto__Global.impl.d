lib/proto/global.ml: Array Bmmb Combined_mac Consensus Engine Fault Float Fun List Mac_driver Params Sinr Sinr_engine Sinr_mac Sinr_phys
