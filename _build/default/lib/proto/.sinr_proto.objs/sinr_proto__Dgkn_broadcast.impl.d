lib/proto/dgkn_broadcast.ml: Approx_progress Array Engine Events Float Induced List Params Sinr Sinr_engine Sinr_mac Sinr_phys
