lib/proto/hm_flood.mli: Params Rng Sinr Sinr_geom Sinr_mac Sinr_phys
