lib/proto/global.mli: Fault Params Rng Sinr Sinr_engine Sinr_geom Sinr_mac Sinr_phys
