lib/proto/mac_driver.mli: Absmac_intf Combined_mac Decay_mac Events Ideal_mac Sinr_mac
