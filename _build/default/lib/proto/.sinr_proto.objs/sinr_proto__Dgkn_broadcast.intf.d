lib/proto/dgkn_broadcast.mli: Params Rng Sinr Sinr_geom Sinr_mac Sinr_phys
