lib/proto/decay_flood.ml: Array Decay Engine Events List Sinr Sinr_engine Sinr_mac Sinr_phys
