lib/proto/consensus.mli: Mac_driver
