lib/proto/bmmb.ml: Array Hashtbl List Mac_driver Queue Sinr_mac
