lib/proto/consensus.ml: Array Mac_driver Sinr_mac
