lib/proto/mac_driver.ml: Absmac_intf Combined_mac Decay_mac Events Ideal_mac Sinr_engine Sinr_mac
