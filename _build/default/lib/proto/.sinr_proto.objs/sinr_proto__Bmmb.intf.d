lib/proto/bmmb.mli: Mac_driver
