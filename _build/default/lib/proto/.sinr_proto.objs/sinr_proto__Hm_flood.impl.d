lib/proto/hm_flood.ml: Array Engine Events Hm_ack Induced List Option Params Rng Sinr Sinr_engine Sinr_geom Sinr_mac Sinr_phys
