lib/proto/decay_flood.mli: Rng Sinr Sinr_geom Sinr_phys
