(** Flooding on raw Halldórsson–Mitra local broadcast — the "[29]-derived"
    baseline of the paper's Sections 2.1 and 3, whose MMB pipeline costs
    O((D+k)·(Δ·log + log²)) and which the absMAC route improves to an
    additive dependence on k. *)

open Sinr_geom
open Sinr_phys
open Sinr_mac

type result = {
  completed : int option;
  informed : int;
}

val smb :
  ?ack_params:Params.ack -> Sinr.t -> rng:Rng.t -> source:int ->
  max_slots:int -> result

val mmb_sequential :
  ?ack_params:Params.ack -> Sinr.t -> rng:Rng.t -> sources:(int * int) list ->
  max_slots:int -> result
(** One full flood per message, run back to back. *)
