(** Centralized greedy MIS — the oracle counterpart of {!Sw_mis}. *)

open Sinr_graph

val compute : ?priority:int array -> Graph.t -> universe:int list -> int list
(** Maximal independent subset of [universe] (w.r.t. [universe] only),
    scanning nodes by increasing priority (default: node id). *)
