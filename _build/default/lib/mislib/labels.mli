(** Temporary random labels in [1, poly(Λ/ε)] (paper Section 9.3.2). *)

open Sinr_geom

val bits_for : ?exponent:float -> lambda:float -> eps_approg:float -> unit -> int
(** Label width in bits so the range is (Λ/ε)^exponent, clamped to [4, 24]. *)

val draw : Rng.t -> n:int -> participants:int list -> bits:int -> int array
(** Fresh uniform labels for the participants; 0 elsewhere. *)

val unique : n:int -> participants:int list -> int array
(** Unique labels (the unmodified [47] baseline with global IDs). *)
