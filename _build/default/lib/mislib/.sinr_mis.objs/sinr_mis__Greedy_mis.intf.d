lib/mislib/greedy_mis.mli: Graph Sinr_graph
