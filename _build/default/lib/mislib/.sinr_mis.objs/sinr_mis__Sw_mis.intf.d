lib/mislib/sw_mis.mli: Sinr_graph
