lib/mislib/greedy_mis.ml: Array Graph List Sinr_graph
