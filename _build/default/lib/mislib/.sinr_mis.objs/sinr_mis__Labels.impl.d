lib/mislib/labels.ml: Array Float List Rng Sinr_geom
