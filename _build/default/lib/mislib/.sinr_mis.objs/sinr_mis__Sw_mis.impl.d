lib/mislib/sw_mis.ml: Array Graph List Log_star Sinr_graph
