lib/mislib/labels.mli: Rng Sinr_geom
