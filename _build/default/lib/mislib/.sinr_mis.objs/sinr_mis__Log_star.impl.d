lib/mislib/log_star.ml: Float
