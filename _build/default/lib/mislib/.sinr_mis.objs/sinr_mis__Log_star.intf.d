lib/mislib/log_star.mli:
