(* The iterated logarithm, which paces the MIS stages (paper Definition 9.2:
   c * log*(Lambda / eps_approg) bounds the per-stage round count). *)

let log_star x =
  if x <= 1. then 0
  else begin
    let rec go x acc = if x <= 1. then acc else go (Float.log2 x) (acc + 1) in
    go x 0
  end

let log_star_int n = log_star (float_of_int (max 1 n))

(* Number of bits needed to write n (>= 1 for n >= 1). *)
let bits n =
  if n < 0 then invalid_arg "Log_star.bits: negative";
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  max 1 (go n 0)
