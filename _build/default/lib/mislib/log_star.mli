(** The iterated logarithm log* and small bit-arithmetic helpers. *)

val log_star : float -> int
(** Iterations of [log2] until the value drops to ≤ 1. *)

val log_star_int : int -> int

val bits : int -> int
(** Bits needed to write a non-negative integer (at least 1). *)
