(* Modified Schneider–Wattenhofer MIS with non-unique temporary labels
   (paper Section 9.3.2 and Lemma 10.1).

   The paper uses the log*-time MIS algorithm of Schneider and Wattenhofer
   [47] for growth-bounded graphs, modified in two ways:

   1. nodes compete with *temporary random labels* from [1, poly(Λ/ε)] that
      may collide, instead of unique IDs, and
   2. the algorithm stops at a predetermined time (a fixed number of
      stages); nodes still unresolved are simply ignored (they join neither
      the independent set nor its dominated fringe).

   We implement the stage/phase structure the paper itself spells out:
   every node is in state {competitor, ruler, ruled, dominator, dominated};
   a stage resets each competitor's value r_v to its label and then runs
   O(log* N) phases; in a phase competitors exchange r_v, a strict local
   minimum joins the MIS (dominator), a tie stalls (ruler — retried next
   stage), and everyone else shrinks r_v by a Cole–Vishkin bit-reduction
   step against the minimum neighbor.  Each stage ends with a few "settle"
   phases of pure local-minimum election to harvest the constant-range
   colors that the reduction produces.

   Ties are broken lexicographically by (r_v, label_v): with locally unique
   labels the algorithm always makes progress, and with colliding labels it
   stalls exactly as the paper's modification intends.

   Guarantees (tested): the dominator set is independent in *every*
   execution, even with adversarial labels; with locally unique labels it is
   maximal w.h.p. within the stage budget.

   The machine is driven one CONGEST round at a time ([outgoing] /
   [deliver] / [advance]) so that the caller can simulate each round over
   the SINR layer — or run it reliably with {!run_congest} in tests. *)

type status = Competitor | Ruler | Dominator | Dominated | Dropped

type msg = { st : status; r : int; label : int }

type node = {
  mutable state : status;
  mutable r : int;
  label : int;
  mutable inbox : msg list; (* messages of the current round *)
}

type t = {
  nodes : node array;
  participating : bool array;
  label_bits : int;
  phases_per_stage : int;
  settle_phases : int;
  stages : int;
  mutable round : int;
}

let settle_phases_default = 6

let phases_for ~label_bits =
  Log_star.log_star_int (1 lsl (min 30 label_bits)) + 2

let create ~n ~participants ~labels ~label_bits ~stages =
  if Array.length labels <> n then invalid_arg "Sw_mis.create: labels size";
  if stages < 1 then invalid_arg "Sw_mis.create: stages < 1";
  let participating = Array.make n false in
  List.iter (fun v -> participating.(v) <- true) participants;
  let nodes =
    Array.init n (fun v ->
        { state = (if participating.(v) then Competitor else Dropped);
          r = labels.(v);
          label = labels.(v);
          inbox = [] })
  in
  { nodes;
    participating;
    label_bits;
    phases_per_stage = phases_for ~label_bits + settle_phases_default;
    settle_phases = settle_phases_default;
    stages;
    round = 0 }

let total_rounds t = t.stages * t.phases_per_stage

let finished t = t.round >= total_rounds t

let status t v = t.nodes.(v).state

(* Every state keeps announcing itself (a resolved or dropped node sends a
   status beacon): receivers must be able to distinguish "neighbor is
   silent by protocol" from "message lost", because a driver running over a
   lossy medium drops a node that misses any neighbor's round message. *)
let outgoing t v =
  let nd = t.nodes.(v) in
  if t.participating.(v) then
    Some { st = nd.state; r = nd.r; label = nd.label }
  else None

let deliver t ~node ~payload =
  let nd = t.nodes.(node) in
  nd.inbox <- payload :: nd.inbox

(* A node whose communication failed drops out for the rest of this MIS
   computation (paper Section 9.3.2: it stops participating in the epoch). *)
let drop t v =
  let nd = t.nodes.(v) in
  if nd.state <> Dominator && nd.state <> Dominated then nd.state <- Dropped

(* Lexicographic key used for strict-minimum election and bit reduction. *)
let key nd = (nd.r, nd.label)

let key_of_msg (m : msg) = (m.r, m.label)

(* Cole–Vishkin reduction step of (r, label) against the minimum neighbor
   key: find the lowest bit position where the concatenated values differ
   and encode (position, own bit). *)
let reduce t (r, l) (mr, ml) =
  let mask = (1 lsl t.label_bits) - 1 in
  let mine = (r lsl t.label_bits) lor (l land mask) in
  let theirs = (mr lsl t.label_bits) lor (ml land mask) in
  let diff = mine lxor theirs in
  if diff = 0 then r (* identical keys: stall, handled as a tie upstream *)
  else begin
    let pos =
      let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
      lowest 0 diff
    in
    (2 * pos) + ((mine lsr pos) land 1)
  end

let advance t =
  if not (finished t) then begin
    let in_settle =
      t.round mod t.phases_per_stage >= t.phases_per_stage - t.settle_phases
    in
    (* Apply the phase transition using this round's inboxes. *)
    Array.iter
      (fun nd ->
        (match nd.state with
         | Competitor | Ruler ->
           let dominator_near =
             List.exists (fun m -> m.st = Dominator) nd.inbox
           in
           if dominator_near then nd.state <- Dominated
           else begin
             let competitors =
               List.filter (fun m -> m.st = Competitor || m.st = Ruler) nd.inbox
             in
             match competitors with
             | [] -> nd.state <- Dominator (* isolated competitor *)
             | _ :: _ ->
               let m =
                 List.fold_left
                   (fun acc c -> if key_of_msg c < acc then key_of_msg c else acc)
                   (key_of_msg (List.hd competitors))
                   (List.tl competitors)
               in
               if key nd < m then nd.state <- Dominator
               else if key nd = m then nd.state <- Ruler
               else begin
                 nd.state <- Competitor;
                 if not in_settle then nd.r <- reduce t (key nd) m
               end
           end
         | Dominator | Dominated | Dropped -> ());
        nd.inbox <- [])
      t.nodes;
    t.round <- t.round + 1;
    (* Stage boundary: rulers re-compete and every competitor resets r_v.
       This must happen strictly *between* rounds — resetting before the
       transition would compare post-reset keys against pre-reset messages
       and could elect two adjacent dominators. *)
    if (not (finished t)) && t.round mod t.phases_per_stage = 0 then
      Array.iter
        (fun nd ->
          match nd.state with
          | Ruler -> nd.state <- Competitor; nd.r <- nd.label
          | Competitor -> nd.r <- nd.label
          | Dominator | Dominated | Dropped -> ())
        t.nodes
  end

let dominators t =
  let acc = ref [] in
  Array.iteri
    (fun v nd -> if nd.state = Dominator then acc := v :: !acc)
    t.nodes;
  List.rev !acc

let resolved t =
  Array.for_all
    (fun nd ->
      match nd.state with
      | Dominator | Dominated | Dropped -> true
      | Competitor | Ruler -> false)
    t.nodes

(* Reliable CONGEST execution over an explicit graph: the reference driver
   used by tests and by the oracle mode of Algorithm 9.1. *)
let run_congest graph t =
  let open Sinr_graph in
  while not (finished t) do
    for v = 0 to Graph.n graph - 1 do
      match outgoing t v with
      | None -> ()
      | Some m ->
        Array.iter
          (fun u -> if t.participating.(u) then deliver t ~node:u ~payload:m)
          (Graph.neighbors graph v)
    done;
    advance t
  done
