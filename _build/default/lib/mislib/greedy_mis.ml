(* Centralized greedy MIS.

   The oracle counterpart of {!Sw_mis}: used by the "oracle" mode of
   Algorithm 9.1 (which isolates the cost of the transmission phases from
   the cost of distributed coordination) and as the reference maximal set in
   tests. *)

open Sinr_graph

(* Greedy MIS restricted to [universe], scanning in increasing [priority]
   (ties by node id).  With priority = temporary label this mirrors what a
   perfect label-based election would produce. *)
let compute ?priority graph ~universe =
  let n = Graph.n graph in
  let prio v = match priority with Some p -> p.(v) | None -> v in
  let order =
    List.sort
      (fun a b -> compare (prio a, a) (prio b, b))
      universe
  in
  let in_universe = Array.make n false in
  List.iter (fun v -> in_universe.(v) <- true) universe;
  let chosen = Array.make n false in
  let blocked = Array.make n false in
  let acc = ref [] in
  List.iter
    (fun v ->
      if not blocked.(v) then begin
        chosen.(v) <- true;
        acc := v :: !acc;
        Array.iter (fun u -> blocked.(u) <- true) (Graph.neighbors graph v);
        blocked.(v) <- true
      end)
    order;
  List.rev !acc
