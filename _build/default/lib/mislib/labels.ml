(* Temporary random labels (paper Section 9.3.2).

   To localize the MIS runtime, each node draws a fresh label uniformly from
   [1, poly(Lambda / eps_approg)] in every phase, instead of using a unique
   network-wide ID.  Collisions are possible and the rest of the machinery
   tolerates them (Lemma 10.1 bounds their local probability). *)

open Sinr_geom

(* Bits so that the label range is (Lambda/eps)^exponent, capped to stay in
   native-int bit-reduction territory. *)
let bits_for ?(exponent = 3.0) ~lambda ~eps_approg () =
  if lambda < 1. then invalid_arg "Labels.bits_for: lambda < 1";
  if eps_approg <= 0. || eps_approg >= 1. then
    invalid_arg "Labels.bits_for: eps_approg not in (0,1)";
  let range = (lambda /. eps_approg) ** exponent in
  let bits = int_of_float (Float.ceil (Float.log2 (Float.max 2. range))) in
  max 4 (min 24 bits)

(* One fresh label per node; non-participants get label 0 (never used). *)
let draw rng ~n ~participants ~bits =
  let labels = Array.make n 0 in
  List.iter (fun v -> labels.(v) <- 1 + Rng.int rng ((1 lsl bits) - 1)) participants;
  labels

(* Unique labels in [1, n] for baseline comparisons (the unmodified
   algorithm of [47] with network-wide IDs, as used by DGKN14). *)
let unique ~n ~participants =
  let labels = Array.make n 0 in
  List.iteri (fun i v -> labels.(v) <- i + 1) participants;
  labels
