(** Modified Schneider–Wattenhofer MIS with non-unique temporary labels
    (paper Section 9.3.2 / Lemma 10.1).

    The machine runs a fixed number of stages, each of [O(log* N) + settle]
    phases; one phase is one CONGEST round. It is driven externally —
    {!outgoing}, {!deliver}, {!advance} — so callers can simulate every
    round over a lossy medium (the SINR layer) or reliably
    ({!run_congest}).

    Guarantees: the dominator set is independent in every execution; with
    locally unique labels and reliable delivery it is a maximal independent
    set w.h.p. within the stage budget. Nodes with colliding labels may
    stall (the paper's [ruler] state) and are ignored at the predetermined
    end time — exactly the modification the paper introduces. *)

type status = Competitor | Ruler | Dominator | Dominated | Dropped

type msg = { st : status; r : int; label : int }

type t

val create :
  n:int -> participants:int list -> labels:int array -> label_bits:int ->
  stages:int -> t
(** [labels.(v)] is node [v]'s temporary label in [0, 2^label_bits);
    non-participants are [Dropped] from the start. *)

val total_rounds : t -> int
(** The predetermined runtime (paper: the algorithm terminates at a fixed
    time rather than upon individual resolution). *)

val finished : t -> bool
val status : t -> int -> status

val outgoing : t -> int -> msg option
(** The message node [v] broadcasts this round ([None] only for
    non-participants). Every state beacons so that loss is detectable. *)

val deliver : t -> node:int -> payload:msg -> unit
val advance : t -> unit
(** Apply one phase transition using this round's delivered messages. *)

val drop : t -> int -> unit
(** Mark a node's communication as failed: it stops participating (paper
    Section 9.3.2) unless already resolved. *)

val dominators : t -> int list
val resolved : t -> bool
(** No competitors or rulers remain. *)

val run_congest : Sinr_graph.Graph.t -> t -> unit
(** Reference driver: reliable synchronous delivery over an explicit graph
    until the predetermined end time. *)
