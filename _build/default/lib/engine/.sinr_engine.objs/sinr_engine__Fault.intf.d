lib/engine/fault.mli: Engine Rng Sinr_geom
