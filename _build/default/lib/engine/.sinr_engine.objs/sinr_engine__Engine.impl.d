lib/engine/engine.ml: Array List Sinr Sinr_phys
