lib/engine/fault.ml: Array Engine List Rng Sinr_geom
