lib/engine/trace.mli: Fmt
