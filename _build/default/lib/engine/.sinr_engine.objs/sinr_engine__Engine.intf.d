lib/engine/engine.mli: Sinr Sinr_phys
