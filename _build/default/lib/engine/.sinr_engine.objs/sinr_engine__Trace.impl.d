lib/engine/trace.ml: Fmt List
