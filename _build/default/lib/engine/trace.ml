(* Bounded event traces for debugging and for assertions over executions.

   The absMAC specification (Section 4.4) is stated over executions — ordered
   sequences of bcast/rcv/ack events with timing constraints.  Tests record
   executions with this module and then check spec predicates over them. *)

type event =
  | Bcast of { node : int; msg : int }  (* environment handed msg to node *)
  | Rcv of { node : int; msg : int; from : int }
  | Ack of { node : int; msg : int }
  | Abort of { node : int; msg : int }
  | Wake of { node : int }
  | Crash of { node : int }
  | Note of string

type entry = { slot : int; event : event }

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable size : int;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  { capacity; entries = []; size = 0; dropped = 0 }

let record t ~slot event =
  if t.size >= t.capacity then begin
    (* Drop the oldest half rather than scanning per insert. *)
    let keep = t.capacity / 2 in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | e :: rest -> e :: take (k - 1) rest
    in
    t.dropped <- t.dropped + (t.size - keep);
    t.entries <- take keep t.entries;
    t.size <- keep
  end;
  t.entries <- { slot; event } :: t.entries;
  t.size <- t.size + 1

let events t = List.rev t.entries

let dropped t = t.dropped

let find_first t pred =
  let rec scan = function
    | [] -> None
    | e :: rest -> (match scan rest with Some hit -> Some hit | None -> if pred e then Some e else None)
  in
  scan t.entries

let count t pred =
  List.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t.entries

let pp_event ppf = function
  | Bcast { node; msg } -> Fmt.pf ppf "bcast(m%d)_%d" msg node
  | Rcv { node; msg; from } -> Fmt.pf ppf "rcv(m%d<-%d)_%d" msg from node
  | Ack { node; msg } -> Fmt.pf ppf "ack(m%d)_%d" msg node
  | Abort { node; msg } -> Fmt.pf ppf "abort(m%d)_%d" msg node
  | Wake { node } -> Fmt.pf ppf "wake_%d" node
  | Crash { node } -> Fmt.pf ppf "crash_%d" node
  | Note s -> Fmt.pf ppf "note(%s)" s

let pp_entry ppf e = Fmt.pf ppf "[%6d] %a" e.slot pp_event e.event
