(* Crash-fault plans for the consensus experiments.

   The consensus problem (paper Section 4.5, from [44]) requires termination
   of every non-faulty process; these helpers build deterministic crash
   schedules and apply them as the simulation advances. *)

open Sinr_geom

type plan = (int * int) list (* (slot, node), sorted by slot *)

let none : plan = []

(* Crash [count] distinct nodes, avoiding [protect], at uniform slots within
   [0, horizon). *)
let random_crashes rng ~n ~count ~horizon ~protect : plan =
  if count < 0 || count >= n then invalid_arg "Fault.random_crashes: bad count";
  let protected_ = Array.make n false in
  List.iter (fun v -> protected_.(v) <- true) protect;
  let victims = ref [] in
  let tries = ref 0 in
  while List.length !victims < count && !tries < 100 * n do
    incr tries;
    let v = Rng.int rng n in
    if (not protected_.(v)) && not (List.mem v !victims) then
      victims := v :: !victims
  done;
  let plan =
    List.map (fun v -> (Rng.int rng (max 1 horizon), v)) !victims
  in
  List.sort compare plan

(* Apply every crash scheduled at or before the engine's current slot.
   Returns the nodes crashed by this call. *)
let apply plan engine =
  let now = Engine.slot engine in
  let due, later = List.partition (fun (s, _) -> s <= now) plan in
  List.iter (fun (_, v) -> Engine.crash engine v) due;
  (List.map snd due, later)
