(* SINR-induced connectivity graphs (paper Section 4.3).

   G_a connects u -- v iff d(u, v) <= R_a = a * R.  The paper works with

     G_1      weak connectivity (communication possible but unreliable),
     G_{1-eps}   strong connectivity, where local broadcast is implemented,
     G_{1-2eps}  the approximation in which approximate progress is measured,

   and with Lambda, the ratio of R_{1-eps} to the minimum pairwise node
   distance. *)

open Sinr_geom
open Sinr_graph

let disc_graph points ~radius =
  let n = Array.length points in
  if n = 0 then Graph.empty 0
  else begin
    let idx = Grid_index.create ~cell:(Float.max radius 1e-6) points in
    Graph.of_predicate ~n
      ~candidates:(fun v ->
        Grid_index.within idx ~center:points.(v) ~r:radius)
      (fun v u -> Point.dist points.(v) points.(u) <= radius +. 1e-12)
  end

let graph_a config points ~a = disc_graph points ~radius:(Config.range_a config a)

let weak config points = graph_a config points ~a:1.0

let strong config points =
  graph_a config points ~a:(1. -. config.Config.eps)

let approx config points =
  graph_a config points ~a:(1. -. (2. *. config.Config.eps))

(* Lambda := R_{1-eps} / (min pairwise distance); at least 1 under the
   near-field normalization. *)
let lambda config points =
  Geo_metrics.lambda_of_radius ~radius:(Config.strong_range config) points

(* All three graphs plus the metrics an experiment typically reports. *)
type profile = {
  weak : Graph.t;
  strong : Graph.t;
  approx : Graph.t;
  lambda : float;
  strong_degree : int;
  strong_diameter : int;
  approx_diameter : int;
}

let profile config points =
  let strong_g = strong config points in
  let approx_g = approx config points in
  { weak = weak config points;
    strong = strong_g;
    approx = approx_g;
    lambda = lambda config points;
    strong_degree = Graph.max_degree strong_g;
    strong_diameter = Bfs.diameter strong_g;
    approx_diameter = Bfs.diameter approx_g }
