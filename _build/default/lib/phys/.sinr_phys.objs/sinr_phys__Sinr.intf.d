lib/phys/sinr.mli: Config Point Sinr_geom
