lib/phys/config.ml: Fmt
