lib/phys/sinr.ml: Array Config Fmt List Placement Point Sinr_geom
