lib/phys/reliability.ml: Array Graph List Sinr Sinr_geom Sinr_graph
