lib/phys/reliability.mli: Graph Sinr Sinr_geom Sinr_graph
