lib/phys/config.mli: Fmt
