lib/phys/induced.mli: Config Graph Point Sinr_geom Sinr_graph
