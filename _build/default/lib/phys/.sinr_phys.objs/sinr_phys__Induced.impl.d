lib/phys/induced.ml: Array Bfs Config Float Geo_metrics Graph Grid_index Point Sinr_geom Sinr_graph
