(** SINR-induced connectivity graphs G₁ ⊇ G₁₋ε ⊇ G₁₋₂ε and the distance
    ratio Λ (paper Section 4.3). *)

open Sinr_geom
open Sinr_graph

val disc_graph : Point.t array -> radius:float -> Graph.t
(** Nodes within [radius] of each other are connected. *)

val graph_a : Config.t -> Point.t array -> a:float -> Graph.t
(** Gₐ: the disc graph of radius Rₐ = a·R. *)

val weak : Config.t -> Point.t array -> Graph.t
(** G₁ — communication physically possible; unreliable in the algorithms. *)

val strong : Config.t -> Point.t array -> Graph.t
(** G₁₋ε — where the absMAC implements reliable local broadcast. *)

val approx : Config.t -> Point.t array -> Graph.t
(** G₁₋₂ε — where approximate progress is measured (Definition 7.1). *)

val lambda : Config.t -> Point.t array -> float
(** Λ = R₁₋ε / (minimum pairwise node distance). *)

type profile = {
  weak : Graph.t;
  strong : Graph.t;
  approx : Graph.t;
  lambda : float;
  strong_degree : int;    (** Δ of G₁₋ε *)
  strong_diameter : int;  (** D of G₁₋ε *)
  approx_diameter : int;  (** D of G₁₋₂ε *)
}

val profile : Config.t -> Point.t array -> profile
(** All induced graphs plus the summary metrics experiments report. *)
