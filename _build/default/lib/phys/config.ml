(* SINR model parameters (paper Section 4.2).

   A transmission from v is decoded at u iff

       P / d(v,u)^alpha
     ---------------------------------------  >= beta        (Eq. 1)
       sum_{w in S\{u,v}} P / d(w,u)^alpha + N

   with uniform power P, path-loss alpha in (2, 6], ambient noise N and
   decoding threshold beta > 1.  The transmission range is
   R = (P / (beta*N))^(1/alpha); R_a = a*R; the strong connectivity graph
   G_{1-eps} connects nodes within R_{1-eps}. *)

type t = {
  alpha : float;  (* path-loss exponent, > 2 *)
  beta : float;   (* decoding threshold, > 1 *)
  noise : float;  (* ambient noise N, > 0 *)
  power : float;  (* uniform transmission power P, > 0 *)
  eps : float;    (* strong-connectivity slack, in (0, 1/2) *)
}

let validate t =
  if t.alpha <= 2. then invalid_arg "Config: alpha must exceed 2";
  if t.beta <= 1. then invalid_arg "Config: beta must exceed 1";
  if t.noise <= 0. then invalid_arg "Config: noise must be positive";
  if t.power <= 0. then invalid_arg "Config: power must be positive";
  if t.eps <= 0. || t.eps >= 0.5 then
    invalid_arg "Config: eps must lie in (0, 1/2)";
  t

let make ~alpha ~beta ~noise ~power ~eps =
  validate { alpha; beta; noise; power; eps }

let range t = (t.power /. (t.beta *. t.noise)) ** (1. /. t.alpha)

(* Choose the power so that the transmission range is exactly [range]. *)
let with_range ?(alpha = 3.0) ?(beta = 1.5) ?(noise = 1.0) ?(eps = 0.1) ~range
    () =
  if range <= 0. then invalid_arg "Config.with_range: range must be positive";
  let power = beta *. noise *. (range ** alpha) in
  make ~alpha ~beta ~noise ~power ~eps

let default = with_range ~range:12.0 ()

let range_a t a = a *. range t

let strong_range t = range_a t (1. -. t.eps)

let approx_range t = range_a t (1. -. (2. *. t.eps))

let pp ppf t =
  Fmt.pf ppf
    "sinr{alpha=%.3g beta=%.3g N=%.3g P=%.3g eps=%.3g R=%.4g R1-e=%.4g}"
    t.alpha t.beta t.noise t.power t.eps (range t) (strong_range t)
