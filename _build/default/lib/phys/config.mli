(** SINR model parameters (paper Section 4.2, Eq. 1). *)

type t = {
  alpha : float;  (** path-loss exponent, must exceed 2 *)
  beta : float;   (** decoding threshold, must exceed 1 *)
  noise : float;  (** ambient noise N, positive *)
  power : float;  (** uniform transmission power P, positive *)
  eps : float;    (** strong-connectivity slack ε ∈ (0, 1/2) *)
}

val make :
  alpha:float -> beta:float -> noise:float -> power:float -> eps:float -> t
(** Validates every field; raises [Invalid_argument] otherwise. *)

val with_range :
  ?alpha:float -> ?beta:float -> ?noise:float -> ?eps:float -> range:float ->
  unit -> t
(** Solve for the power so the transmission range equals [range]. Defaults:
    α = 3, β = 1.5, N = 1, ε = 0.1. *)

val default : t
(** [with_range ~range:12.0 ()]. *)

val range : t -> float
(** R = (P/(βN))^(1/α): the noise-limited transmission range. *)

val range_a : t -> float -> float
(** Rₐ = a·R. *)

val strong_range : t -> float
(** R₁₋ε, the radius of the strong connectivity graph G₁₋ε. *)

val approx_range : t -> float
(** R₁₋₂ε, the radius of the approximation graph G₁₋₂ε. *)

val pp : t Fmt.t
