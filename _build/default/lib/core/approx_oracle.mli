(** Oracle variant of Algorithm 9.1: the H^μ_p graphs and MIS sparsification
    are computed centrally, only the p/Q data slots are simulated. The
    measurement instrument of the coordination-overhead ablation (E8) — not
    part of the paper's system itself. *)

open Sinr_geom
open Sinr_phys

type t

val create : Params.approg -> Sinr.t -> rng:Rng.t -> t

val epoch_slots : t -> int
(** Φ · data_slots: an epoch without any coordination stages. *)

val epoch_index : t -> int
val member : t -> node:int -> bool
val start : t -> node:int -> Events.payload -> unit
val stop : t -> node:int -> unit
val decide : t -> node:int -> Events.wire option
val on_receive : t -> receiver:int -> sender:int -> Events.wire -> unit
val end_slot : t -> Approx_progress.rcv_event list
