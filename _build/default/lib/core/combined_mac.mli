(** Algorithm 11.1 — the absMAC implementation for the SINR model
    (Theorem 11.1): acknowledgments (Algorithm B.1) on even slots,
    approximate progress (Algorithm 9.1) on odd slots.
    Implements {!Absmac_intf.S}. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine

type t

val create :
  ?ack_params:Params.ack -> ?approg_params:Params.approg -> ?exact:bool ->
  ?trace:Trace.t -> Sinr.t -> rng:Rng.t -> t
(** [exact] enables Remark 4.6's exact local broadcast: data receptions
    whose signal strength places the transmitter outside R₁₋ε are
    discarded before they can produce rcv outputs. *)

(** {1 The {!Absmac_intf.S} interface} *)

val n : t -> int
val now : t -> int
(** Engine slots elapsed (the MAC time unit). *)

val bounds : t -> Absmac_intf.bounds
val set_handlers : t -> Absmac_intf.handlers -> unit
val bcast : t -> node:int -> data:int -> Events.payload
val abort : t -> node:int -> unit
val busy : t -> node:int -> bool
val step : t -> unit

(** {1 Introspection} *)

val set_raw_rcv_hook : t -> (Approx_progress.rcv_event -> unit) -> unit
(** Observe every rcv output together with its transmitting node —
    measurement instrumentation; not part of the absMAC interface. *)

val engine : t -> Events.wire Engine.t
val approg : t -> Approx_progress.t
val hm : t -> Hm_ack.t
val lambda : t -> float

val last_ack_capped : t -> node:int -> bool
(** Whether the node's most recent ack was forced by the f_ack cap rather
    than a natural Algorithm B.1 halt. *)
