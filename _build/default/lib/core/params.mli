(** Tunable constants of the absMAC implementations: every Θ(·) of the paper
    made explicit, plus the derived per-run schedules. *)

(** {1 Algorithm 9.1 — approximate progress} *)

type approg = {
  p : float;             (** coordination transmission probability, (0, 1/2] *)
  mu : float;            (** H^μ_p reliability threshold, (0, p) *)
  gamma : float;         (** H̃̃ approximation slack, (0, 1) *)
  phi_scale : float;     (** Φ = ⌈phi_scale · log₂ Λ⌉ phases per epoch *)
  q_scale : float;       (** Q = q_scale · (log₂ Λ)^α *)
  t_scale : float;       (** T = ⌈t_scale · log₂(f(h₁)/ε)⌉ repetitions *)
  t_min : int;
  data_scale : float;    (** data slots per phase = ⌈data_scale·Q·log₂(1/ε)⌉ *)
  mis_stages : int;      (** c′: MIS stages before the fixed timeout *)
  label_exponent : float;(** labels range over (Λ/ε)^label_exponent *)
  eps_approg : float;
}

val default_approg : approg
val validate_approg : approg -> approg

val growth_f : int -> float
(** The growth bound f(r) = (2r+1)² (Lemma 4.2). *)

type schedule = {
  phi : int;
  q : float;
  t : int;
  data_slots : int;
  mis_rounds : int;
  label_bits : int;
  phase_slots : int;
  epoch_slots : int;
  potential_threshold : int;
      (** receptions needed to call a node a potential H̃̃ neighbor:
          ⌊(1-γ/2)·μ·T⌋, at least 1 *)
}

val schedule : Sinr_phys.Config.t -> lambda:float -> approg -> schedule
(** Concrete per-epoch slot layout for a deployment with distance ratio
    [lambda]. *)

val f_approg_formula :
  Sinr_phys.Config.t -> lambda:float -> eps_approg:float -> float
(** The Theorem 9.1 bound (log^α Λ + log* 1/ε)·log Λ·log(1/ε), for
    measured-vs-formula reports. *)

(** {1 Algorithm B.1 — acknowledgments} *)

type ack = {
  contention_bound : int option;  (** Ñ; default 4Λ² per Theorem 5.1 *)
  delta_reps : float;             (** δ of Algorithm B.1 *)
  tp_budget : float;              (** γ′ of Algorithm B.1 *)
  fallback_threshold : float;     (** paper constant 8 (scaled) *)
  p_min_div : float;              (** paper constant 128 (scaled) *)
  p_start_div : float;            (** paper constant 4 *)
  p_cap : float;                  (** paper constant 1/16 *)
  eps_ack : float;
}

val default_ack : ack
val validate_ack : ack -> ack

val contention_default : lambda:float -> int
(** Ñ = 4Λ², the Theorem 5.1 default contention bound. *)

val f_ack_formula : delta:int -> lambda:float -> eps_ack:float -> float
(** The Theorem 5.1 bound Δ·log(Λ/ε) + log Λ·log(Λ/ε). *)

val f_ack_cap :
  ?scale:float -> delta:int -> lambda:float -> eps_ack:float -> unit -> int
(** Slot cap after which the MAC emits the ack regardless (the paper's
    "stop after f_ack rounds"). *)
