(* Tunable constants of the absMAC implementations.

   The paper gives every quantity up to Theta(.) constants.  This module
   makes each constant explicit, documents the formula it instantiates, and
   derives the concrete per-run schedule from (Config, Lambda, epsilons).
   Default scales are chosen so that laptop-scale simulations (n up to a few
   thousand, <= ~10^6 slots) exhibit the asymptotic shapes; the ablation
   bench (experiment E8) sweeps the critical ones. *)

open Sinr_mis

(* ------------------------------------------------------------------ *)
(* Algorithm 9.1 (approximate progress)                                *)
(* ------------------------------------------------------------------ *)

type approg = {
  p : float;
      (* per-slot transmission probability inside coordination phases,
         in (0, 1/2] (paper: constant p) *)
  mu : float;
      (* reliability threshold of H^mu_p[S], in (0, p) *)
  gamma : float;
      (* approximation slack of H~~ (paper: gamma in (0,1)) *)
  phi_scale : float;
      (* Phi = max(1, ceil(phi_scale * log2 Lambda)) phases per epoch *)
  q_scale : float;
      (* Q = max(1, q_scale * (log2 Lambda)^alpha): data transmissions use
         probability p / Q *)
  t_scale : float;
      (* T = max(t_min, ceil(t_scale * log2(f(h1) / eps_approg))): repeated
         transmissions per coordination step.  The paper's T also carries a
         1/(gamma^2 mu) factor that we fold into t_scale to keep runs
         tractable; the log(1/eps) *shape* is preserved. *)
  t_min : int;
  data_scale : float;
      (* data slots per phase = max(1, ceil(data_scale * Q * log2(1/eps))) *)
  mis_stages : int;
      (* c' of the modified MIS: number of stages before the timeout *)
  label_exponent : float;
      (* temporary labels range over (Lambda/eps)^label_exponent *)
  eps_approg : float;
}

let default_approg =
  { p = 0.4;
    mu = 0.08;
    gamma = 0.5;
    phi_scale = 1.0;
    q_scale = 0.25;
    t_scale = 2.0;
    t_min = 8;
    data_scale = 0.75;
    mis_stages = 2;
    label_exponent = 3.0;
    eps_approg = 0.1 }

let validate_approg a =
  if a.p <= 0. || a.p > 0.5 then invalid_arg "Params: p not in (0, 1/2]";
  if a.mu <= 0. || a.mu >= a.p then invalid_arg "Params: mu not in (0, p)";
  if a.gamma <= 0. || a.gamma >= 1. then invalid_arg "Params: gamma not in (0,1)";
  if a.eps_approg <= 0. || a.eps_approg >= 1. then
    invalid_arg "Params: eps_approg not in (0,1)";
  if a.mis_stages < 1 then invalid_arg "Params: mis_stages < 1";
  a

(* Growth bound f(r) = (2r+1)^2 for disc-induced graphs (Lemma 4.2). *)
let growth_f r = float_of_int (((2 * r) + 1) * ((2 * r) + 1))

(* h1 <= c * 4^Phi * log*(Lambda/eps) (Lemma 10.4); for the T formula we
   only need f(h1) inside a logarithm, so a crude h1 proxy suffices. *)
let h1_proxy ~phi ~lambda ~eps =
  let ls = float_of_int (Log_star.log_star (lambda /. eps)) in
  Float.max 1. (float_of_int phi *. 3. *. Float.max 1. ls)

(* The concrete per-epoch schedule derived from the parameters. *)
type schedule = {
  phi : int;            (* phases per epoch *)
  q : float;            (* data-slot probability divisor *)
  t : int;              (* slots per coordination step *)
  data_slots : int;     (* data slots per phase *)
  mis_rounds : int;     (* CONGEST rounds of the MIS machine *)
  label_bits : int;
  phase_slots : int;    (* 2T + mis_rounds*T + data_slots *)
  epoch_slots : int;    (* phi * phase_slots *)
  potential_threshold : int; (* count >= this => potential H~~ neighbor *)
}

let schedule config ~lambda (a : approg) =
  let a = validate_approg a in
  let alpha = config.Sinr_phys.Config.alpha in
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  let phi = max 1 (int_of_float (Float.ceil (a.phi_scale *. loglam))) in
  let q = Float.max 1. (a.q_scale *. (loglam ** alpha)) in
  let h1 = h1_proxy ~phi ~lambda ~eps:a.eps_approg in
  let t =
    max a.t_min
      (int_of_float
         (Float.ceil
            (a.t_scale
             *. Float.log2 (Float.max 2. (growth_f (int_of_float h1) /. a.eps_approg)))))
  in
  let log_inv_eps = Float.max 1. (Float.log2 (1. /. a.eps_approg)) in
  let data_slots =
    max 1 (int_of_float (Float.ceil (a.data_scale *. q *. log_inv_eps)))
  in
  let label_bits =
    Labels.bits_for ~exponent:a.label_exponent ~lambda
      ~eps_approg:a.eps_approg ()
  in
  (* The Sw_mis machine computes its own phase count from the label bits;
     mirror the formula here to lay out the slot schedule. *)
  let mis_rounds =
    let probe =
      Sw_mis.create ~n:1 ~participants:[ 0 ] ~labels:[| 1 |] ~label_bits
        ~stages:a.mis_stages
    in
    Sw_mis.total_rounds probe
  in
  let phase_slots = (2 * t) + (mis_rounds * t) + data_slots in
  let potential_threshold =
    max 1
      (int_of_float
         (Float.floor ((1. -. (a.gamma /. 2.)) *. a.mu *. float_of_int t)))
  in
  { phi;
    q;
    t;
    data_slots;
    mis_rounds;
    label_bits;
    phase_slots;
    epoch_slots = phi * phase_slots;
    potential_threshold }

(* The paper's f_approg formula (Theorem 9.1), evaluated for reporting:
   (log^alpha Lambda + log* (1/eps)) * log Lambda * log(1/eps). *)
let f_approg_formula config ~lambda ~eps_approg =
  let alpha = config.Sinr_phys.Config.alpha in
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  let log_inv = Float.max 1. (Float.log2 (1. /. eps_approg)) in
  let ls = float_of_int (Log_star.log_star (1. /. eps_approg)) in
  ((loglam ** alpha) +. ls) *. loglam *. log_inv

(* ------------------------------------------------------------------ *)
(* Algorithm B.1 (Halldorsson–Mitra acknowledgments)                   *)
(* ------------------------------------------------------------------ *)

type ack = {
  contention_bound : int option;
      (* N~_x: known upper bound on local contention; None => use the
         paper's default 4*Lambda^2 (proof of Theorem 5.1) *)
  delta_reps : float;
      (* delta of Algorithm B.1: inner-loop length delta * log(N~/eps) *)
  tp_budget : float;
      (* gamma' of Algorithm B.1: halt when total probability spent
         exceeds tp_budget * log(N~/eps) *)
  fallback_threshold : float;
      (* FallBack after fallback_threshold * log(2 N~/eps) receptions
         (paper constant: 8) *)
  p_min_div : float;  (* floor probability = 1 / (p_min_div * N~), paper: 128 *)
  p_start_div : float;(* starting probability = 1 / (p_start_div * N~), paper: 4 *)
  p_cap : float;      (* probability ceiling, paper: 1/16 *)
  eps_ack : float;
}

let default_ack =
  { contention_bound = None;
    delta_reps = 1.0;
    tp_budget = 6.0;
    fallback_threshold = 2.0;
    p_min_div = 32.;
    p_start_div = 4.;
    p_cap = 1. /. 16.;
    eps_ack = 0.1 }

let validate_ack a =
  if a.eps_ack <= 0. || a.eps_ack >= 1. then
    invalid_arg "Params: eps_ack not in (0,1)";
  if a.p_cap <= 0. || a.p_cap > 0.5 then invalid_arg "Params: p_cap";
  a

let contention_default ~lambda =
  max 2 (int_of_float (Float.ceil (4. *. lambda *. lambda)))

(* The paper's f_ack formula (Theorem 5.1), evaluated for reporting:
   Delta * log(Lambda/eps) + log Lambda * log(Lambda/eps). *)
let f_ack_formula ~delta ~lambda ~eps_ack =
  let loglam_eps = Float.max 1. (Float.log2 (Float.max 2. (lambda /. eps_ack))) in
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  (float_of_int delta *. loglam_eps) +. (loglam *. loglam_eps)

(* Hard cap on the slots Algorithm B.1 may run before the MAC declares the
   ack anyway (Theorem 5.1's "stop after f_ack rounds").  The scale leaves
   generous room above the formula value. *)
let f_ack_cap ?(scale = 12.) ~delta ~lambda ~eps_ack () =
  max 32 (int_of_float (Float.ceil (scale *. f_ack_formula ~delta ~lambda ~eps_ack)))
