(** Measurement drivers extracting the quantities the paper's theorems
    bound: f_ack samples, approximate-progress delays, and Decay progress
    delays for the Theorem 8.1 comparison. *)

open Sinr_geom
open Sinr_phys

type ack_sample = {
  sender : int;
  delay : int;      (** engine slots from bcast to ack *)
  capped : bool;    (** ack forced by the f_ack cap rather than a B.1 halt *)
  neighbors : int;  (** strong-graph neighborhood size *)
  reached : int;    (** neighbors holding a rcv of the payload at ack time *)
}

val acks :
  ?ack_params:Params.ack -> ?approg_params:Params.approg -> Sinr.t ->
  rng:Rng.t -> senders:int list -> max_slots:int -> ack_sample list
(** Broadcast simultaneously from [senders] under the combined MAC and
    collect one sample per completed ack. *)

type approg_sample = {
  listener : int;
  delay : int option; (** first rcv from a G₁₋ε neighbor, engine slots *)
}

val covered_listeners :
  approx_graph:Sinr_graph.Graph.t -> senders:int list -> n:int -> int list
(** Non-senders with a broadcasting G₁₋₂ε-neighbor: the nodes Definition
    7.1 guarantees approximate progress for. *)

val approx_progress :
  ?ack_params:Params.ack -> ?approg_params:Params.approg -> Sinr.t ->
  rng:Rng.t -> senders:int list -> max_slots:int -> approg_sample list
(** Continuous broadcasts from [senders]; one sample per covered
    listener. *)

val approx_progress_only :
  ?params:Params.approg -> Sinr.t -> rng:Rng.t -> senders:int list ->
  max_slots:int -> approg_sample list * Approx_progress.t
(** Algorithm 9.1 alone on every slot (no acknowledgment interleave): the
    quantity Theorem 9.1 itself bounds. Also returns the machine for
    introspection (drops, H̃̃ snapshots). *)

val approx_progress_oracle :
  ?params:Params.approg -> Sinr.t -> rng:Rng.t -> senders:int list ->
  max_slots:int -> approg_sample list
(** The {!Approx_oracle} machine under the same driver: data slots only,
    coordination by oracle — the E8 overhead baseline. *)

val decay_progress :
  ?n_tilde:int -> Sinr.t -> rng:Rng.t -> senders:int list -> max_slots:int ->
  approg_sample list
(** The same progress event under the bare Decay strategy (Theorem 8.1). *)
