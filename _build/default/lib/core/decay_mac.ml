(* A Decay-based absMAC — the "basic implementation" style of Khabbazian
   et al. [37] (paper Section 3: "Basic implementations of a probabilistic
   absMAC were provided by [37] using Decay"), transplanted to the SINR
   model.

   Every node with an ongoing broadcast runs the Decay probability sweep
   for a fixed slot budget, then acks.  rcv outputs fire on payload
   receptions, deduplicated per (node, message) like the combined MAC.

   This implementation exists as a comparison point: Theorem 8.1 predicts
   that no Decay-style strategy can give fast approximate progress, and
   experiment E9 measures exactly that against Algorithm 11.1.  It
   implements {!Absmac_intf.S}. *)

open Sinr_phys
open Sinr_engine

type t = {
  engine : Events.wire Engine.t;
  decay : Decay.t;
  ack_budget : int; (* slots of Decay per broadcast before the ack *)
  bounds : Absmac_intf.bounds;
  mutable handlers : Absmac_intf.handlers;
  seq : int array;
  ongoing : Events.payload option array;
  bcast_slot : int array;
  emitted : (int * (int * int), unit) Hashtbl.t;
  trace : Trace.t option;
}

(* Budget shaped like [37]'s Decay-based acknowledgment: contention bound
   times a log(contention/eps) factor. *)
let budget_for ~n_tilde ~eps_ack ~scale =
  max 32
    (int_of_float
       (Float.ceil
          (scale *. float_of_int n_tilde
           *. Float.log2 (Float.max 2. (float_of_int n_tilde /. eps_ack)))))

let create ?(eps_ack = 0.1) ?(budget_scale = 0.5) ?trace sinr ~rng =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let n_tilde = Params.contention_default ~lambda in
  let ack_budget = budget_for ~n_tilde ~eps_ack ~scale:budget_scale in
  let bounds =
    { Absmac_intf.f_ack = ack_budget;
      f_prog = ack_budget;
      (* Theorem 8.1: Decay cannot beat Delta-order approximate progress;
         the honest advertised bound is the ack budget itself. *)
      f_approg = ack_budget;
      eps_ack;
      eps_prog = eps_ack;
      eps_approg = eps_ack }
  in
  { engine = Engine.create sinr;
    decay = Decay.create ~n_tilde ~n ~rng;
    ack_budget;
    bounds;
    handlers = Absmac_intf.null_handlers;
    seq = Array.make n 0;
    ongoing = Array.make n None;
    bcast_slot = Array.make n 0;
    emitted = Hashtbl.create 64;
    trace }

let n t = Engine.n t.engine
let now t = Engine.slot t.engine
let bounds t = t.bounds
let set_handlers t h = t.handlers <- h
let busy t ~node = t.ongoing.(node) <> None
let engine t = t.engine

let record t ev =
  match t.trace with
  | Some tr -> Trace.record tr ~slot:(now t) ev
  | None -> ()

let bcast t ~node ~data =
  if busy t ~node then
    invalid_arg "Decay_mac.bcast: node already has an ongoing broadcast";
  let payload = { Events.origin = node; seq = t.seq.(node); data } in
  t.seq.(node) <- t.seq.(node) + 1;
  t.ongoing.(node) <- Some payload;
  t.bcast_slot.(node) <- now t;
  Engine.wake t.engine node;
  Decay.start t.decay ~node ~slot:(now t) payload;
  record t (Trace.Bcast { node; msg = payload.Events.seq });
  payload

let abort t ~node =
  match t.ongoing.(node) with
  | None -> ()
  | Some payload ->
    t.ongoing.(node) <- None;
    Decay.stop t.decay ~node;
    record t (Trace.Abort { node; msg = payload.Events.seq })

let emit_rcv t ~node ~payload ~from =
  let id = (node, Events.payload_id payload) in
  if payload.Events.origin <> node && not (Hashtbl.mem t.emitted id) then begin
    Hashtbl.add t.emitted id ();
    record t (Trace.Rcv { node; msg = payload.Events.seq; from });
    t.handlers.Absmac_intf.on_rcv ~node ~payload
  end

let step t =
  let slot = Engine.slot t.engine in
  let deliveries =
    Engine.step t.engine ~decide:(fun v ->
        match Decay.decide t.decay ~node:v ~slot with
        | Some w -> Engine.Transmit w
        | None -> Engine.Listen)
  in
  List.iter
    (fun d ->
      match d.Engine.message with
      | Events.Decay payload | Events.Data payload ->
        emit_rcv t ~node:d.Engine.receiver ~payload ~from:d.Engine.sender
      | Events.Probe | Events.Neighbor_list _ | Events.Mis_round _ -> ())
    deliveries;
  Array.iteri
    (fun node slot0 ->
      match t.ongoing.(node) with
      | None -> ()
      | Some payload ->
        if now t - slot0 >= t.ack_budget then begin
          t.ongoing.(node) <- None;
          Decay.stop t.decay ~node;
          record t (Trace.Ack { node; msg = payload.Events.seq });
          t.handlers.Absmac_intf.on_ack ~node ~payload
        end)
    t.bcast_slot
