(** absMAC payloads and the on-air wire format shared by the MAC
    implementations. *)

type payload = {
  origin : int;  (** node where the [bcast] input occurred *)
  seq : int;     (** per-origin sequence number *)
  data : int;    (** opaque protocol content *)
}

val payload_id : payload -> int * int
(** The unique identity [(origin, seq)] of a bcast-message. *)

val pp_payload : payload Fmt.t

type wire =
  | Data of payload
  | Probe
  | Neighbor_list of int list
  | Mis_round of { round : int; msg : Sinr_mis.Sw_mis.msg }
  | Decay of payload

val pp_wire : wire Fmt.t
