(* The abstract MAC layer interface (paper Section 4.4).

   The layer offers acknowledged local broadcast over a communication graph
   G: the environment calls [bcast]; the layer eventually delivers [rcv]
   events at neighbors and an [ack] at the sender, within the probabilistic
   delay bounds (f_ack, eps_ack), (f_prog, eps_prog) and — our modified
   specification, Definition 7.1 — (f_approg, eps_approg) measured with
   respect to the approximation G~ of G.

   The *enhanced* layer additionally exposes time (our [now]), the known
   bounds, and an [abort] input.

   Implementations: {!Ideal_mac} (graph-based reference used to validate
   protocols and the spec itself) and {!Combined_mac} (Algorithm 11.1 over
   the SINR simulator). *)

type bounds = {
  f_ack : int;       (* acknowledged-by bound, in MAC time units *)
  f_prog : int;      (* progress bound w.r.t. G *)
  f_approg : int;    (* approximate-progress bound w.r.t. G~ *)
  eps_ack : float;
  eps_prog : float;
  eps_approg : float;
}

type handlers = {
  on_rcv : node:int -> payload:Events.payload -> unit;
  on_ack : node:int -> payload:Events.payload -> unit;
}

let null_handlers =
  { on_rcv = (fun ~node:_ ~payload:_ -> ());
    on_ack = (fun ~node:_ ~payload:_ -> ()) }

module type S = sig
  type t

  val n : t -> int
  (** Number of nodes. *)

  val now : t -> int
  (** Elapsed MAC time units (the enhanced layer's clock). *)

  val bounds : t -> bounds
  (** The delay guarantees this instance was configured for. *)

  val set_handlers : t -> handlers -> unit

  val bcast : t -> node:int -> data:int -> Events.payload
  (** Start an acknowledged local broadcast; returns the payload identity.
      Raises [Invalid_argument] if the node already has an ongoing
      broadcast (one outstanding bcast per node, as in [37]). *)

  val abort : t -> node:int -> unit
  (** Abort the node's ongoing broadcast (enhanced layer); no [ack] will be
      delivered for it. No effect when idle. *)

  val busy : t -> node:int -> bool
  (** Whether the node has an ongoing (unacknowledged, unaborted)
      broadcast. *)

  val step : t -> unit
  (** Advance one MAC time unit, firing handlers for the events that
      occur. *)
end
