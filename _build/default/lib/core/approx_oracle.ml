(* Oracle variant of Algorithm 9.1.

   Same epoch/phase/data structure as {!Approx_progress}, but the two
   coordination products — the reliability graph H^mu_p[S_phi] and the MIS
   S_{phi+1} — are computed centrally (Monte-Carlo H estimation plus greedy
   MIS over random priorities) instead of being negotiated over the air.
   Only the p/Q data slots are simulated.

   This is not part of the paper's system; it is the measurement instrument
   behind the coordination-overhead ablation (experiment E8): comparing its
   progress times against the distributed machine separates "time spent
   transmitting the payload" from "time spent building H~~ and running the
   MIS below the MAC layer". *)

open Sinr_geom
open Sinr_phys
open Sinr_mis

type node_data = {
  mutable payload : Events.payload option;
  mutable member : bool;
}

type t = {
  params : Params.approg;
  sinr : Sinr.t;
  phi : int;
  q : float;
  data_slots : int;
  rng : Rng.t;
  nodes : node_data array;
  emitted : (int * (int * int), unit) Hashtbl.t;
  mutable pos : int;
  mutable epoch : int;
  mutable pending_rcv : Approx_progress.rcv_event list;
}

let epoch_slots t = t.phi * t.data_slots

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  Array.iter (fun nd -> nd.member <- nd.payload <> None) t.nodes

(* Sparsify: S_{phi+1} = greedy MIS over H^mu_p[S_phi] with fresh random
   priorities (the oracle counterpart of the temporary-label election). *)
let sparsify t =
  let members = ref [] in
  Array.iteri (fun v nd -> if nd.member then members := v :: !members) t.nodes;
  match !members with
  | [] | [ _ ] -> ()
  | set ->
    let est =
      Reliability.estimate ~trials:120 t.sinr (Rng.split t.rng ~key:t.pos)
        ~set ~p:t.params.Params.p ~mu:t.params.Params.mu
    in
    let n = Array.length t.nodes in
    let priority = Array.make n 0 in
    List.iter (fun v -> priority.(v) <- Rng.int t.rng 1_000_000) set;
    let keep =
      Greedy_mis.compute ~priority (Reliability.graph est) ~universe:set
    in
    Array.iter (fun nd -> nd.member <- false) t.nodes;
    List.iter (fun v -> t.nodes.(v).member <- true) keep

let create params sinr ~rng =
  let params = Params.validate_approg params in
  let config = Sinr.config sinr in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let sched = Params.schedule config ~lambda params in
  let t =
    { params;
      sinr;
      phi = sched.Params.phi;
      q = sched.Params.q;
      data_slots = sched.Params.data_slots;
      rng;
      nodes =
        Array.init (Sinr.n sinr) (fun _ -> { payload = None; member = false });
      emitted = Hashtbl.create 64;
      pos = 0;
      epoch = -1;
      pending_rcv = [] }
  in
  begin_epoch t;
  t

let epoch_index t = t.epoch
let member t ~node = t.nodes.(node).member

let start t ~node payload = t.nodes.(node).payload <- Some payload
let stop t ~node = t.nodes.(node).payload <- None

let decide t ~node =
  let nd = t.nodes.(node) in
  match nd.payload with
  | Some payload when nd.member ->
    if Rng.bernoulli t.rng (t.params.Params.p /. t.q) then
      Some (Events.Data payload)
    else None
  | Some _ | None -> None

let on_receive t ~receiver ~sender wire =
  match wire with
  | Events.Data payload | Events.Decay payload ->
    let id = (receiver, Events.payload_id payload) in
    if payload.Events.origin <> receiver && not (Hashtbl.mem t.emitted id)
    then begin
      Hashtbl.add t.emitted id ();
      t.pending_rcv <-
        { Approx_progress.node = receiver; payload; from = sender }
        :: t.pending_rcv
    end
  | Events.Probe | Events.Neighbor_list _ | Events.Mis_round _ -> ()

let end_slot t =
  t.pos <- t.pos + 1;
  if t.pos mod t.data_slots = 0 then
    if t.pos >= epoch_slots t then begin
      t.pos <- 0;
      begin_epoch t
    end
    else sparsify t;
  let out = List.rev t.pending_rcv in
  t.pending_rcv <- [];
  out
