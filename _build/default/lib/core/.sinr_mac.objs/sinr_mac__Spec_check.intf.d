lib/core/spec_check.mli: Fmt Graph Sinr_engine Sinr_graph Trace
