lib/core/hm_ack.mli: Events Params Rng Sinr_geom
