lib/core/combined_mac.ml: Absmac_intf Approx_progress Array Config Engine Events Hm_ack Induced List Params Rng Sinr Sinr_engine Sinr_geom Sinr_graph Sinr_phys Trace
