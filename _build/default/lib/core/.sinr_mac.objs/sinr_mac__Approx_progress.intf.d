lib/core/approx_progress.mli: Config Events Params Rng Sinr_geom Sinr_graph Sinr_phys
