lib/core/approx_oracle.ml: Approx_progress Array Events Greedy_mis Hashtbl Induced List Params Reliability Rng Sinr Sinr_geom Sinr_mis Sinr_phys
