lib/core/approx_progress.ml: Array Events Hashtbl Labels List Option Params Rng Sinr_geom Sinr_graph Sinr_mis Sw_mis
