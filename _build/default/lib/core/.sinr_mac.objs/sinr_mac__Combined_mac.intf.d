lib/core/combined_mac.mli: Absmac_intf Approx_progress Engine Events Hm_ack Params Rng Sinr Sinr_engine Sinr_geom Sinr_phys Trace
