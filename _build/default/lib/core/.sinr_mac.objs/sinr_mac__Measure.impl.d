lib/core/measure.ml: Absmac_intf Approx_oracle Approx_progress Array Combined_mac Decay Engine Events Fun Graph Hashtbl Induced List Params Sinr Sinr_engine Sinr_graph Sinr_phys
