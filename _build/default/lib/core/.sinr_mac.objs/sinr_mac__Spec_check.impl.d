lib/core/spec_check.ml: Array Fmt Graph Hashtbl List Option Sinr_engine Sinr_graph Trace
