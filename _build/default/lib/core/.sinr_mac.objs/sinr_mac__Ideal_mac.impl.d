lib/core/ideal_mac.ml: Absmac_intf Array Events Graph List Rng Sinr_engine Sinr_geom Sinr_graph Trace
