lib/core/hm_ack.ml: Array Events Float Params Rng Sinr_geom
