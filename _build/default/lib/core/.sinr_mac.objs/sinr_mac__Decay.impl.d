lib/core/decay.ml: Array Events Float Rng Sinr_geom
