lib/core/params.ml: Float Labels Log_star Sinr_mis Sinr_phys Sw_mis
