lib/core/ideal_mac.mli: Absmac_intf Events Graph Rng Sinr_engine Sinr_geom Sinr_graph Trace
