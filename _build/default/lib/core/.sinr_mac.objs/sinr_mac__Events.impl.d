lib/core/events.ml: Fmt Sinr_mis
