lib/core/decay_mac.ml: Absmac_intf Array Decay Engine Events Float Hashtbl Induced List Params Sinr Sinr_engine Sinr_phys Trace
