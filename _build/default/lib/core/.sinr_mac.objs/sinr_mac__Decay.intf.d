lib/core/decay.mli: Events Rng Sinr_geom
