lib/core/decay_mac.mli: Absmac_intf Engine Events Rng Sinr Sinr_engine Sinr_geom Sinr_phys Trace
