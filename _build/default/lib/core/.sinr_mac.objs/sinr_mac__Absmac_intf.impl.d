lib/core/absmac_intf.ml: Events
