lib/core/measure.mli: Approx_progress Params Rng Sinr Sinr_geom Sinr_graph Sinr_phys
