lib/core/approx_oracle.mli: Approx_progress Events Params Rng Sinr Sinr_geom Sinr_phys
