lib/core/events.mli: Fmt Sinr_mis
