lib/core/params.mli: Sinr_phys
