(* Graph-based reference absMAC.

   Delivers exactly the probabilistic absMAC specification over an explicit
   communication graph, with a pluggable scheduler choosing event times
   within the configured bounds:

   - [Random]      rcv times uniform in [1, f_prog] for the first reception
                   and in [1, f_ack] overall; ack at a uniform time after
                   all rcvs;
   - [Adversarial] every rcv as late as the progress bound permits and the
                   ack exactly at f_ack — the worst case the spec allows.

   Used to (a) test protocols above the MAC layer independently of the SINR
   machinery, and (b) cross-check the spec predicates themselves.  The
   scheduler may also be configured to *violate* progress with probability
   eps_prog, which the spec-conformance tests exploit. *)

open Sinr_geom
open Sinr_graph
open Sinr_engine

type policy =
  | Random
  | Adversarial
  | Violating of float
      (* with this probability per broadcast, drop one neighbor's rcv and
         push another past f_prog: a spec-breaking scheduler used to
         negative-test Spec_check *)

type pending = {
  payload : Events.payload;
  mutable rcv_at : (int * int) list; (* (slot, neighbor), sorted *)
  mutable ack_at : int;
  mutable aborted : bool;
}

type t = {
  graph : Graph.t;
  bounds : Absmac_intf.bounds;
  policy : policy;
  rng : Rng.t;
  trace : Trace.t option;
  mutable handlers : Absmac_intf.handlers;
  mutable now : int;
  mutable seq : int array;
  active : pending option array; (* per node *)
}

let create ?(policy = Random) ?trace graph ~bounds ~rng =
  if bounds.Absmac_intf.f_prog < 1 || bounds.Absmac_intf.f_ack < bounds.f_prog
  then invalid_arg "Ideal_mac.create: need 1 <= f_prog <= f_ack";
  { graph;
    bounds;
    policy;
    rng;
    trace;
    handlers = Absmac_intf.null_handlers;
    now = 0;
    seq = Array.make (Graph.n graph) 0;
    active = Array.make (Graph.n graph) None }

let record t ev =
  match t.trace with
  | Some tr -> Trace.record tr ~slot:t.now ev
  | None -> ()

let n t = Graph.n t.graph
let now t = t.now
let bounds t = t.bounds
let set_handlers t h = t.handlers <- h
let busy t ~node = t.active.(node) <> None
let graph t = t.graph

(* Scheduling note.  The progress bound is per *listener*: whenever a
   neighbor of v has been broadcasting for f_prog time, v must have had a
   rcv inside that window.  Scheduling every rcv within f_prog of its bcast
   is a conservative schedule that satisfies the bound for any overlap
   pattern of broadcasts (the spec would also allow a specific message to
   arrive as late as f_ack when other active messages cover v's windows,
   but a reference implementation may be stronger than its spec).  The
   acknowledgment may still wait until f_ack. *)
let schedule t node payload =
  let nbrs = Array.to_list (Graph.neighbors t.graph node) in
  let f_prog = t.bounds.Absmac_intf.f_prog
  and f_ack = t.bounds.Absmac_intf.f_ack in
  let rcv_times =
    match t.policy with
    | Adversarial ->
      (* Latest legal conservative schedule: every rcv exactly at f_prog. *)
      List.map (fun u -> (t.now + f_prog, u)) nbrs
    | Random ->
      List.map (fun u -> (t.now + 1 + Rng.int t.rng f_prog, u)) nbrs
    | Violating p ->
      if Rng.bernoulli t.rng p then
        (* Break the spec: starve the first neighbor entirely and deliver
           the second only after the progress bound. *)
        (match nbrs with
         | [] -> []
         | [ u ] -> [ (t.now + f_ack + f_prog + 1, u) ]
         | u1 :: u2 :: rest ->
           ignore u1;
           (t.now + f_ack + f_prog + 1, u2)
           :: List.map (fun u -> (t.now + f_prog, u)) rest)
      else List.map (fun u -> (t.now + f_prog, u)) nbrs
  in
  let last_rcv =
    List.fold_left (fun acc (s, _) -> max acc s) t.now rcv_times
  in
  let ack_at =
    match t.policy with
    | Adversarial -> t.now + f_ack
    | Violating _ -> t.now + f_ack
    | Random ->
      let lo = max (last_rcv + 1) (t.now + 1) in
      min (t.now + f_ack) (lo + Rng.int t.rng (max 1 (t.now + f_ack - lo + 1)))
  in
  { payload;
    rcv_at = List.sort compare rcv_times;
    ack_at;
    aborted = false }

let bcast t ~node ~data =
  if busy t ~node then
    invalid_arg "Ideal_mac.bcast: node already has an ongoing broadcast";
  let payload =
    { Events.origin = node; seq = t.seq.(node); data }
  in
  t.seq.(node) <- t.seq.(node) + 1;
  t.active.(node) <- Some (schedule t node payload);
  record t (Trace.Bcast { node; msg = payload.Events.seq });
  payload

let abort t ~node =
  match t.active.(node) with
  | None -> ()
  | Some p ->
    p.aborted <- true;
    t.active.(node) <- None;
    record t (Trace.Abort { node; msg = p.payload.Events.seq })

let step t =
  t.now <- t.now + 1;
  Array.iteri
    (fun node slot ->
      match slot with
      | None -> ()
      | Some p ->
        let due, later = List.partition (fun (s, _) -> s <= t.now) p.rcv_at in
        p.rcv_at <- later;
        List.iter
          (fun (_, u) ->
            record t
              (Trace.Rcv { node = u; msg = p.payload.Events.seq; from = node });
            t.handlers.Absmac_intf.on_rcv ~node:u ~payload:p.payload)
          due;
        if p.rcv_at = [] && p.ack_at <= t.now then begin
          t.active.(node) <- None;
          record t (Trace.Ack { node; msg = p.payload.Events.seq });
          t.handlers.Absmac_intf.on_ack ~node ~payload:p.payload
        end)
    t.active
