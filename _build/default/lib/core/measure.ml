(* Measurement drivers for the absMAC implementations.

   These harnesses run a deployment under a chosen algorithm and extract
   the quantities the paper's theorems bound:

   - f_ack samples      (Theorem 5.1 / Remark 5.3): bcast -> ack delay and
                        whether every strong neighbor received the payload
                        before the ack ("nice" broadcasts, Definition 12.2);
   - f_approg samples   (Theorem 9.1 / Definition 7.1): for each listener
                        with a broadcasting G_{1-2eps}-neighbor, the delay
                        until a rcv from a G_{1-eps}-neighbor;
   - Decay progress     (Theorem 8.1): the same event under the Decay
                        strategy, for the lower-bound comparison. *)

open Sinr_graph
open Sinr_phys
open Sinr_engine

(* ------------------------------------------------------------------ *)
(* Acknowledgments                                                      *)
(* ------------------------------------------------------------------ *)

type ack_sample = {
  sender : int;
  delay : int;          (* engine slots from bcast to ack *)
  capped : bool;        (* ack forced by the f_ack cap, not a B.1 halt *)
  neighbors : int;      (* |N_{G_{1-eps}}(sender)| *)
  reached : int;        (* neighbors that got a rcv of the payload first *)
}

(* Broadcast from every node of [senders] simultaneously at slot 0 and run
   the combined MAC until every ack fired (or max_slots).  The
   simultaneous-senders setting is the contention regime Remark 5.3's lower
   bound speaks about. *)
let acks ?ack_params ?approg_params sinr ~rng ~senders ~max_slots =
  let mac = Combined_mac.create ?ack_params ?approg_params sinr ~rng in
  let strong = Induced.strong (Sinr.config sinr) (Sinr.points sinr) in
  let pending = Hashtbl.create 16 in (* origin -> set of neighbors reached *)
  let results = ref [] in
  let outstanding = ref 0 in
  let handlers =
    { Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          match Hashtbl.find_opt pending payload.Events.origin with
          | Some reached -> Hashtbl.replace reached node ()
          | None -> ());
      on_ack =
        (fun ~node ~payload ->
          match Hashtbl.find_opt pending payload.Events.origin with
          | None -> ()
          | Some reached ->
            Hashtbl.remove pending payload.Events.origin;
            decr outstanding;
            let nbrs = Graph.neighbors strong node in
            let got =
              Array.fold_left
                (fun acc u -> if Hashtbl.mem reached u then acc + 1 else acc)
                0 nbrs
            in
            let delay = Combined_mac.now mac in
            results :=
              { sender = node;
                delay;
                capped = Combined_mac.last_ack_capped mac ~node;
                neighbors = Array.length nbrs;
                reached = got }
              :: !results) }
  in
  Combined_mac.set_handlers mac handlers;
  List.iter
    (fun v ->
      Hashtbl.replace pending v (Hashtbl.create 8);
      incr outstanding;
      ignore (Combined_mac.bcast mac ~node:v ~data:v))
    senders;
  let budget = ref max_slots in
  while !outstanding > 0 && !budget > 0 do
    Combined_mac.step mac;
    decr budget
  done;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Approximate progress                                                 *)
(* ------------------------------------------------------------------ *)

type approg_sample = {
  listener : int;
  delay : int option;  (* first rcv from a strong neighbor, engine slots *)
}

(* Listeners covered by Definition 7.1: non-senders with at least one
   broadcasting G~-neighbor. *)
let covered_listeners ~approx_graph ~senders ~n =
  let is_sender = Array.make n false in
  List.iter (fun v -> is_sender.(v) <- true) senders;
  List.filter
    (fun i ->
      (not is_sender.(i))
      && Array.exists (fun u -> is_sender.(u)) (Graph.neighbors approx_graph i))
    (List.init n Fun.id)

(* Broadcast continuously from [senders] (re-bcast on every ack so the
   broadcasts stay ongoing) and record, for every covered listener, the
   first slot with a rcv transmitted by a G_{1-eps}-neighbor. *)
let approx_progress ?ack_params ?approg_params sinr ~rng ~senders ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let mac = Combined_mac.create ?ack_params ?approg_params sinr ~rng in
  let strong = Induced.strong config (Sinr.points sinr) in
  let approx = Induced.approx config (Sinr.points sinr) in
  let listeners = covered_listeners ~approx_graph:approx ~senders ~n in
  let first = Array.make n None in
  let remaining = ref (List.length listeners) in
  let watched = Array.make n false in
  List.iter (fun i -> watched.(i) <- true) listeners;
  Combined_mac.set_raw_rcv_hook mac (fun ev ->
      let i = ev.Approx_progress.node in
      if watched.(i) && first.(i) = None
         && Graph.mem_edge strong i ev.Approx_progress.from
      then begin
        first.(i) <- Some (Combined_mac.now mac);
        decr remaining
      end);
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack =
        (fun ~node ~payload ->
          (* Keep the broadcast ongoing for the whole measurement. *)
          ignore (Combined_mac.bcast mac ~node ~data:payload.Events.data)) };
  List.iter
    (fun v -> ignore (Combined_mac.bcast mac ~node:v ~data:v))
    senders;
  let budget = ref max_slots in
  while !remaining > 0 && !budget > 0 do
    Combined_mac.step mac;
    decr budget
  done;
  List.map (fun i -> { listener = i; delay = first.(i) }) listeners

(* Algorithm 9.1 in isolation: the approximate-progress machine runs on
   every slot, with no acknowledgment algorithm interleaved.  Exposes the
   epoch machinery itself (H~~ estimation, MIS sparsification, p/Q data
   slots) — the quantity Theorem 9.1 bounds. *)
let approx_progress_only ?(params = Params.default_approg) sinr ~rng ~senders
    ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let strong = Induced.strong config (Sinr.points sinr) in
  let approx = Induced.approx config (Sinr.points sinr) in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let machine = Approx_progress.create params config ~lambda ~n ~rng in
  let engine = Engine.create sinr in
  List.iter
    (fun v ->
      Engine.wake engine v;
      Approx_progress.start machine ~node:v
        { Events.origin = v; seq = 0; data = v })
    senders;
  let listeners = covered_listeners ~approx_graph:approx ~senders ~n in
  let first = Array.make n None in
  let remaining = ref (List.length listeners) in
  let watched = Array.make n false in
  List.iter (fun i -> watched.(i) <- true) listeners;
  let budget = ref max_slots in
  while !remaining > 0 && !budget > 0 do
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Approx_progress.decide machine ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        Approx_progress.on_receive machine ~receiver:d.Engine.receiver
          ~sender:d.Engine.sender d.Engine.message)
      ds;
    let rcvs = Approx_progress.end_slot machine in
    List.iter
      (fun ev ->
        let i = ev.Approx_progress.node in
        if watched.(i) && first.(i) = None
           && Graph.mem_edge strong i ev.Approx_progress.from
        then begin
          first.(i) <- Some (Engine.slot engine);
          decr remaining
        end)
      rcvs;
    decr budget
  done;
  (List.map (fun i -> { listener = i; delay = first.(i) }) listeners, machine)

(* The oracle machine under the same driver shape: used by the
   coordination-overhead ablation. *)
let approx_progress_oracle ?(params = Params.default_approg) sinr ~rng
    ~senders ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let strong = Induced.strong config (Sinr.points sinr) in
  let approx = Induced.approx config (Sinr.points sinr) in
  let machine = Approx_oracle.create params sinr ~rng in
  let engine = Engine.create sinr in
  List.iter
    (fun v ->
      Engine.wake engine v;
      Approx_oracle.start machine ~node:v
        { Events.origin = v; seq = 0; data = v })
    senders;
  let listeners = covered_listeners ~approx_graph:approx ~senders ~n in
  let first = Array.make n None in
  let remaining = ref (List.length listeners) in
  let watched = Array.make n false in
  List.iter (fun i -> watched.(i) <- true) listeners;
  let budget = ref max_slots in
  while !remaining > 0 && !budget > 0 do
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Approx_oracle.decide machine ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        Approx_oracle.on_receive machine ~receiver:d.Engine.receiver
          ~sender:d.Engine.sender d.Engine.message)
      ds;
    let rcvs = Approx_oracle.end_slot machine in
    List.iter
      (fun ev ->
        let i = ev.Approx_progress.node in
        if watched.(i) && first.(i) = None
           && Graph.mem_edge strong i ev.Approx_progress.from
        then begin
          first.(i) <- Some (Engine.slot engine);
          decr remaining
        end)
      rcvs;
    decr budget
  done;
  List.map (fun i -> { listener = i; delay = first.(i) }) listeners

(* ------------------------------------------------------------------ *)
(* Decay progress (Theorem 8.1 comparison)                              *)
(* ------------------------------------------------------------------ *)

(* Run the bare Decay strategy from [senders]; record for each covered
   listener the first slot it decodes any sender's payload from a strong
   neighbor. *)
let decay_progress ?n_tilde sinr ~rng ~senders ~max_slots =
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let strong = Induced.strong config (Sinr.points sinr) in
  let approx = Induced.approx config (Sinr.points sinr) in
  let lambda = Induced.lambda config (Sinr.points sinr) in
  let n_tilde =
    match n_tilde with
    | Some v -> v
    | None -> Params.contention_default ~lambda
  in
  let decay = Decay.create ~n_tilde ~n ~rng in
  let engine = Engine.create sinr in
  List.iter
    (fun v ->
      Engine.wake engine v;
      Decay.start decay ~node:v ~slot:0
        { Events.origin = v; seq = 0; data = v })
    senders;
  let listeners = covered_listeners ~approx_graph:approx ~senders ~n in
  let first = Array.make n None in
  let remaining = ref (List.length listeners) in
  let watched = Array.make n false in
  List.iter (fun i -> watched.(i) <- true) listeners;
  let budget = ref max_slots in
  while !remaining > 0 && !budget > 0 do
    let slot = Engine.slot engine in
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Decay.decide decay ~node:v ~slot with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        let i = d.Engine.receiver in
        if watched.(i) && first.(i) = None
           && Graph.mem_edge strong i d.Engine.sender
        then begin
          first.(i) <- Some (Engine.slot engine);
          decr remaining
        end)
      ds;
    decr budget
  done;
  List.map
    (fun i -> { listener = i; delay = first.(i) })
    listeners
