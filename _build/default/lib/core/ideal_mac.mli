(** Graph-based reference absMAC: delivers exactly the probabilistic
    specification over an explicit graph, under a random or adversarial
    (latest-legal) event scheduler. Used to test protocols above the layer
    independently of the SINR machinery. *)

open Sinr_geom
open Sinr_graph
open Sinr_engine

type policy =
  | Random
  | Adversarial
  | Violating of float
      (** spec-breaking scheduler: with this probability per broadcast,
          one neighbor's rcv is starved past the ack and another misses
          the progress window — for negative-testing {!Spec_check} *)

type t

val create :
  ?policy:policy -> ?trace:Trace.t -> Graph.t -> bounds:Absmac_intf.bounds ->
  rng:Rng.t -> t
(** Requires [1 <= f_prog <= f_ack]. A [trace] records the execution for
    {!Spec_check}. *)

val graph : t -> Graph.t

(** The functions below implement {!Absmac_intf.S}. *)

val n : t -> int
val now : t -> int
val bounds : t -> Absmac_intf.bounds
val set_handlers : t -> Absmac_intf.handlers -> unit
val bcast : t -> node:int -> data:int -> Events.payload
val abort : t -> node:int -> unit
val busy : t -> node:int -> bool
val step : t -> unit
