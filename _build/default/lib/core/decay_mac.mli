(** A Decay-based absMAC in the style of [37]'s basic implementations — the
    comparison point for Theorem 8.1 at the MAC level (experiment E9).
    Implements {!Absmac_intf.S}. *)

open Sinr_geom
open Sinr_phys
open Sinr_engine

type t

val create :
  ?eps_ack:float -> ?budget_scale:float -> ?trace:Trace.t -> Sinr.t ->
  rng:Rng.t -> t
(** The per-broadcast Decay budget is
    [budget_scale · Ñ · log₂(Ñ/ε)] slots, Ñ = 4Λ². *)

val n : t -> int
val now : t -> int
val bounds : t -> Absmac_intf.bounds
val set_handlers : t -> Absmac_intf.handlers -> unit
val bcast : t -> node:int -> data:int -> Events.payload
val abort : t -> node:int -> unit
val busy : t -> node:int -> bool
val step : t -> unit

val engine : t -> Events.wire Engine.t
