(* absMAC payloads and the on-air wire format.

   The MAC layer distinguishes (footnote 6 of the paper) between
   *bcast-messages* — payloads handed down by the environment through a
   bcast(m)_i input — and *messages* sent for coordination among the nodes
   below the MAC layer (label probes, neighbor lists, MIS rounds).  The
   [wire] type is the union of everything our implementations put on the
   air; the engine is instantiated at this type. *)

type payload = {
  origin : int; (* node at which the bcast input occurred *)
  seq : int;    (* per-origin sequence number: (origin, seq) is unique *)
  data : int;   (* opaque protocol content *)
}

let payload_id p = (p.origin, p.seq)

let pp_payload ppf p = Fmt.pf ppf "m(%d.%d:%d)" p.origin p.seq p.data

type wire =
  | Data of payload
      (* a bcast-message transmission (HM Algorithm B.1, or Line 11 of
         Algorithm 9.1) *)
  | Probe
      (* H~~ construction, first T slots: "transmit your ID"; the SINR layer
         itself identifies the transmitter on successful decoding *)
  | Neighbor_list of int list
      (* H~~ construction, second T slots: the sender's potential-neighbor
         ids (constant-size by the paper's footnote 9) *)
  | Mis_round of { round : int; msg : Sinr_mis.Sw_mis.msg }
      (* one simulated CONGEST round of the modified MIS algorithm *)
  | Decay of payload
      (* baseline Decay transmissions (Theorem 8.1 experiments) *)

let pp_wire ppf = function
  | Data p -> Fmt.pf ppf "data %a" pp_payload p
  | Probe -> Fmt.string ppf "probe"
  | Neighbor_list ids ->
    Fmt.pf ppf "nlist [%a]" Fmt.(list ~sep:comma int) ids
  | Mis_round { round; msg = _ } -> Fmt.pf ppf "mis r%d" round
  | Decay p -> Fmt.pf ppf "decay %a" pp_payload p
