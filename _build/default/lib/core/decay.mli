(** The BGI Decay baseline whose approximate-progress failure Theorem 8.1
    proves (experiment E4). *)

open Sinr_geom

type t

val create : n_tilde:int -> n:int -> rng:Rng.t -> t
(** [n_tilde] bounds the contention; cycles have length log₂(Ñ) + 1. *)

val cycle_len : t -> int
val start : t -> node:int -> slot:int -> Events.payload -> unit
val stop : t -> node:int -> unit
val active : t -> node:int -> bool

val decide : t -> node:int -> slot:int -> Events.wire option
(** Transmit with probability 2^-i at position i of the node's cycle. *)
