(* Shared reporting helpers for the experiment harness. *)

open Sinr_stats

(* Run [trial seed] for each seed and summarize the float results,
   discarding trials that return None (timeouts are reported apart). *)
let trials ~seeds trial =
  let results = List.filter_map trial seeds in
  let timeouts = List.length seeds - List.length results in
  let summary =
    match results with
    | [] -> None
    | _ -> Some (Summary.of_samples (Array.of_list results))
  in
  (summary, timeouts)

let mean_cell = function
  | None -> "timeout"
  | Some (s : Summary.t) -> Fmt.str "%.0f" s.Summary.mean

let opt_int_to_float = Option.map float_of_int

(* Fit measured means against the paper's predictor values and render the
   verdict line printed under each table. *)
let shape_verdict ~label preds measured =
  match (preds, measured) with
  | p, m when Array.length p >= 2 && Array.length p = Array.length m ->
    let c, r2 = Fit.proportional p m in
    let g = Fit.growth_ratio p m in
    Fmt.str
      "shape check [%s]: y ~ c*formula with c=%.3g, R^2=%.3f, \
       end-to-end growth ratio %.2f (1.0 = perfect shape match)"
      label c r2 g
  | _ -> Fmt.str "shape check [%s]: not enough data points" label

(* Print a table; when SINR_CSV_DIR is set, also dump it as CSV there
   (file name derived from the title). *)
let emit table =
  Sinr_stats.Table.print table;
  match Sys.getenv_opt "SINR_CSV_DIR" with
  | None -> ()
  | Some dir ->
    (try if not (Sys.is_directory dir) then raise Exit with
     | Sys_error _ | Exit ->
       (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ()));
    let slug =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
          | _ -> '_')
        (Sinr_stats.Table.title table)
    in
    let path = Filename.concat dir (slug ^ ".csv") in
    let oc = open_out path in
    output_string oc (Sinr_stats.Table.to_csv table);
    close_out oc;
    Fmt.pr "[csv written: %s]@." path

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Fmt.pr "@.%s@.=== %s ===@.%s@.@." bar title bar
