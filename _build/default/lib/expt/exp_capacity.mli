(** E11 — simulator capacity: the full Algorithm 9.1 stack on deployments
    of hundreds of nodes, with wall-time reporting. *)

type row = {
  n : int;
  delta : int;
  lambda : float;
  success : float;
  slots : int;
  wall_s : float;
  slots_per_s : float;
}

val run : ?seed:int -> ?ns:int list -> unit -> row list
