(* E7 — Table 1, global consensus row (Corollary 5.5).

   Binary consensus over the enhanced absMAC on uniform deployments,
   sweeping n (with density fixed, so D grows as sqrt n); a crash-fault
   variant on dense deployments checks agreement/validity under failures.
   Expected shape: completion ~ D * (Delta + log Lambda) * log(n*Lambda). *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_proto

type row = {
  n : int;
  delta : int;
  diameter : int;
  completed : Summary.t option;
  timeouts : int;
  agreement_ok : bool;
  validity_ok : bool;
  formula : float;
}

let formula ~n ~delta ~lambda ~diameter =
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  let lognl = Float.max 1. (Float.log2 (float_of_int n *. lambda)) in
  float_of_int diameter *. (float_of_int delta +. loglam) *. lognl

let row ~seeds ~n ~target_degree =
  let delta = ref 0 and diameter = ref 0 and lambda = ref 1. in
  let agreement_ok = ref true and validity_ok = ref true in
  let completed, timeouts =
    Report.trials ~seeds (fun seed ->
        let rng = Rng.create (0xC05 + (seed * 61)) in
        let d =
          Workloads.connected (Rng.split rng ~key:0) (fun r ->
              Workloads.uniform r ~n ~target_degree)
        in
        delta := d.Workloads.profile.Induced.strong_degree;
        diameter := d.Workloads.profile.Induced.strong_diameter;
        lambda := d.Workloads.profile.Induced.lambda;
        let initial = Array.init n (fun v -> (v * 7) mod 3 = 0) in
        let r =
          Global.cons d.Workloads.sinr ~rng:(Rng.split rng ~key:1) ~initial
            ~rounds_bound:(2 * (!diameter + 1))
            ~max_slots:30_000_000
        in
        if not r.Global.agreement then agreement_ok := false;
        if not r.Global.validity then validity_ok := false;
        Report.opt_int_to_float r.Global.completed)
  in
  { n;
    delta = !delta;
    diameter = !diameter;
    completed;
    timeouts;
    agreement_ok = !agreement_ok;
    validity_ok = !validity_ok;
    formula = formula ~n ~delta:!delta ~lambda:!lambda ~diameter:!diameter }

let run ?(seeds = [ 1; 2; 3 ]) ?(ns = [ 12; 24; 48 ]) ?(target_degree = 8) () =
  Report.section "E7: network-wide consensus (Table 1, Corollary 5.5)";
  let table =
    Table.create ~title:"consensus completion vs network size"
      ~header:
        [ "n"; "Delta"; "D"; "completion mean"; "timeouts"; "agree";
          "valid"; "formula D(Delta+logL)log(nL)" ]
      ()
  in
  let rows = List.map (fun n -> row ~seeds ~n ~target_degree) ns in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.n;
          string_of_int r.delta;
          string_of_int r.diameter;
          Report.mean_cell r.completed;
          string_of_int r.timeouts;
          (if r.agreement_ok then "yes" else "NO");
          (if r.validity_ok then "yes" else "NO");
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  let usable = List.filter (fun r -> r.completed <> None) rows in
  let preds = Array.of_list (List.map (fun r -> r.formula) usable) in
  let ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.completed).Summary.mean) usable)
  in
  print_endline
    (Report.shape_verdict ~label:"CONS ~ D(Δ+logΛ)log(nΛ)" preds ms);
  rows

type crash_row = {
  crashes : int;
  completed : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
}

let run_crashes ?(seeds = [ 1; 2; 3 ]) ?(n = 14) ?(crash_counts = [ 0; 2; 4 ])
    () =
  Report.section "E7b: consensus under crash faults";
  let table =
    Table.create ~title:"dense deployment, crashes injected mid-run"
      ~header:[ "crashes"; "completed"; "agreement"; "validity"; "deciders" ]
      ()
  in
  let rows =
    List.concat_map
      (fun crashes ->
        List.map
          (fun seed ->
            let rng = Rng.create (0xCAFE + (seed * 71)) in
            let pts =
              Placement.uniform (Rng.split rng ~key:0) ~n
                ~box:(Box.square ~side:8.) ~min_dist:1.
            in
            let sinr = Sinr.create Config.default pts in
            let initial = Array.init n (fun v -> v mod 2 = 0) in
            let faults =
              Sinr_engine.Fault.random_crashes (Rng.split rng ~key:1) ~n
                ~count:crashes ~horizon:10_000 ~protect:[]
            in
            let r =
              Global.cons sinr ~rng:(Rng.split rng ~key:2) ~initial ~faults
                ~rounds_bound:6 ~max_slots:30_000_000
            in
            { crashes;
              completed = r.Global.completed <> None;
              agreement = r.Global.agreement;
              validity = r.Global.validity;
              deciders = r.Global.deciders })
          seeds)
      crash_counts
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.crashes;
          (if r.completed then "yes" else "NO");
          (if r.agreement then "yes" else "NO");
          (if r.validity then "yes" else "NO");
          string_of_int r.deciders ])
    rows;
  Report.emit table;
  rows
