(* E8 — Ablations of the design choices DESIGN.md calls out.

   On a fixed uniform deployment, vary one knob of Algorithm 9.1 at a time
   and measure approximate-progress success and delay:

   - T (t_scale): the paper's reduced-repetitions choice (Section 10.1.2);
     too small a T breaks the H~~ estimate and floods the W set, large T
     wastes slots — the localized analysis is exactly about how small T
     may be;
   - Q (q_scale): the data-slot probability divisor of Lemma 10.16;
   - label range (label_exponent): non-unique temporary labels
     (Section 10.2); a tiny range forces collisions and stalls the MIS. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_mac

type row = {
  knob : string;
  value : float;
  success : float;
  p90 : float option;
  epoch_slots : int;
  drops : int;
}

let measure ~seeds ~params ~n ~side =
  let succ = ref [] and p90s = ref [] in
  let epoch = ref 0 and drops = ref 0 in
  List.iter
    (fun seed ->
      let rng = Rng.create (0xAB1 + (seed * 89)) in
      let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
      let sched =
        Params.schedule (Sinr.config d.Workloads.sinr)
          ~lambda:d.Workloads.profile.Induced.lambda params
      in
      epoch := sched.Params.epoch_slots;
      let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
      let samples, machine =
        Measure.approx_progress_only ~params d.Workloads.sinr
          ~rng:(Rng.split rng ~key:1) ~senders
          ~max_slots:(5 * sched.Params.epoch_slots)
      in
      drops := !drops + Approx_progress.drops_total machine;
      let done_ = List.filter (fun s -> s.Measure.delay <> None) samples in
      (match samples with
       | [] -> ()
       | _ ->
         succ :=
           (float_of_int (List.length done_)
            /. float_of_int (List.length samples))
           :: !succ);
      let ds =
        List.filter_map
          (fun s -> Option.map float_of_int s.Measure.delay)
          samples
      in
      match ds with
      | [] -> ()
      | _ -> p90s := (Summary.of_samples (Array.of_list ds)).Summary.p90 :: !p90s)
    seeds;
  let avg = function
    | [] -> None
    | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
  in
  ( (match avg !succ with Some v -> v | None -> 0.),
    avg !p90s,
    !epoch,
    !drops )

(* Coordination overhead: the distributed machine (H~~ estimation + MIS
   over the air) vs the oracle machine (data slots only). *)
let overhead ~seeds ~n ~side =
  let mean_delay samples =
    let ds =
      List.filter_map
        (fun (s : Measure.approg_sample) ->
          Option.map float_of_int s.Measure.delay)
        samples
    in
    match ds with
    | [] -> None
    | _ ->
      Some (List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds))
  in
  let dist = ref [] and orac = ref [] in
  List.iter
    (fun seed ->
      let rng = Rng.create (0x0FF + (seed * 97)) in
      let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
      let sched =
        Params.schedule (Sinr.config d.Workloads.sinr)
          ~lambda:d.Workloads.profile.Induced.lambda Params.default_approg
      in
      let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
      let samples, _ =
        Measure.approx_progress_only d.Workloads.sinr
          ~rng:(Rng.split rng ~key:1) ~senders
          ~max_slots:(5 * sched.Params.epoch_slots)
      in
      (match mean_delay samples with Some m -> dist := m :: !dist | None -> ());
      let samples =
        Measure.approx_progress_oracle d.Workloads.sinr
          ~rng:(Rng.split rng ~key:2) ~senders
          ~max_slots:(5 * sched.Params.epoch_slots)
      in
      match mean_delay samples with Some m -> orac := m :: !orac | None -> ())
    seeds;
  let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  match (!dist, !orac) with
  | [], _ | _, [] -> print_endline "overhead: incomplete data"
  | d, o ->
    Fmt.pr
      "coordination overhead: distributed mean progress %.0f slots vs \
       oracle (data slots only) %.0f slots — factor %.1fx is the price of \
       building H~~ and the MIS over the air@."
      (avg d) (avg o)
      (avg d /. avg o)

(* The price of knowing only Lambda: Theorem 5.1 instantiates Algorithm
   B.1's contention bound as N~ = 4*Lambda^2 because nodes know a
   polynomial bound on Lambda but not their degree.  Compare acknowledgment
   delays against an oracle that knows the true contention. *)
let contention_knowledge ~seeds ~n ~side =
  let mean_ack params d rng =
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
    let samples =
      Measure.acks ~ack_params:params d.Workloads.sinr ~rng ~senders
        ~max_slots:4_000_000
    in
    match samples with
    | [] -> None
    | _ ->
      Some
        (List.fold_left
           (fun acc (a : Measure.ack_sample) ->
             acc +. float_of_int a.Measure.delay)
           0. samples
        /. float_of_int (List.length samples))
  in
  let lambda_only = ref [] and oracle = ref [] in
  List.iter
    (fun seed ->
      let rng = Rng.create (0xC0 + (seed * 131)) in
      let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
      let delta = d.Workloads.profile.Induced.strong_degree in
      (match mean_ack Params.default_ack d (Rng.split rng ~key:1) with
       | Some m -> lambda_only := m :: !lambda_only
       | None -> ());
      let oracle_params =
        { Params.default_ack with Params.contention_bound = Some (delta + 1) }
      in
      match mean_ack oracle_params d (Rng.split rng ~key:2) with
      | Some m -> oracle := m :: !oracle
      | None -> ())
    seeds;
  let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  match (!lambda_only, !oracle) with
  | [], _ | _, [] -> print_endline "contention knowledge: incomplete data"
  | l, o ->
    Fmt.pr
      "contention knowledge: f_ack with N~ = 4*Lambda^2 (Theorem 5.1) = %.0f \
slots vs %.0f with the true contention known — factor %.2fx is the \
price of knowing only Lambda@."
      (avg l) (avg o)
      (avg l /. avg o)

(* Where an epoch's slots go (static layout from the schedule). *)
let epoch_composition ~n ~side =
  let d = Workloads.uniform_density (Rng.create 0xEC) ~n ~side in
  let sched =
    Params.schedule
      (Sinr_phys.Sinr.config d.Workloads.sinr)
      ~lambda:d.Workloads.profile.Induced.lambda Params.default_approg
  in
  let t = sched.Params.t in
  let per_phase = sched.Params.phase_slots in
  let pct x = 100. *. float_of_int x /. float_of_int per_phase in
  Fmt.pr
    "epoch composition (per phase of %d slots): H~~ probes+lists %d \
(%.0f%%), MIS simulation %d (%.0f%%), data %d (%.0f%%)@."
    per_phase (2 * t)
    (pct (2 * t))
    (sched.Params.mis_rounds * t)
    (pct (sched.Params.mis_rounds * t))
    sched.Params.data_slots
    (pct sched.Params.data_slots)

let knob_rows ~seeds ~n ~side ~knob ~values ~apply =
  List.map
    (fun value ->
      let params = apply Params.default_approg value in
      let success, p90, epoch_slots, drops =
        measure ~seeds ~params ~n ~side
      in
      { knob; value; success; p90; epoch_slots; drops })
    values

let run ?(seeds = [ 1; 2 ]) ?(n = 50) ?(side = 22.) () =
  Report.section "E8: ablations of Algorithm 9.1's design choices";
  let table =
    Table.create ~title:"one knob at a time; success = progressed listeners"
      ~header:[ "knob"; "value"; "success"; "p90 delay"; "epoch"; "drops" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let rows =
    knob_rows ~seeds ~n ~side ~knob:"t_scale" ~values:[ 0.5; 1.0; 2.0; 4.0 ]
      ~apply:(fun p v -> { p with Params.t_scale = v; t_min = 2 })
    @ knob_rows ~seeds ~n ~side ~knob:"q_scale" ~values:[ 0.1; 0.25; 1.0 ]
        ~apply:(fun p v -> { p with Params.q_scale = v })
    @ knob_rows ~seeds ~n ~side ~knob:"label_exp" ~values:[ 0.25; 1.0; 3.0 ]
        ~apply:(fun p v -> { p with Params.label_exponent = v })
    @ knob_rows ~seeds ~n ~side ~knob:"mis_stages" ~values:[ 1.; 2.; 4. ]
        ~apply:(fun p v -> { p with Params.mis_stages = int_of_float v })
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.knob;
          Fmt.str "%.2f" r.value;
          Fmt.str "%.2f" r.success;
          (match r.p90 with Some v -> Fmt.str "%.0f" v | None -> "-");
          string_of_int r.epoch_slots;
          string_of_int r.drops ])
    rows;
  Report.emit table;
  print_endline
    "reading guide: small t_scale shrinks epochs but inflates drops (the \
     W set of Lemma 10.3) and can cost success; q_scale trades data-slot \
     contention against the number of data slots (Lemma 10.16); a tiny \
     label range forces collisions that stall the MIS (Lemma 10.1).";
  overhead ~seeds ~n ~side;
  contention_knowledge ~seeds ~n ~side;
  epoch_composition ~n ~side;
  rows
