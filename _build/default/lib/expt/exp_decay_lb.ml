(* E4 — Theorem 8.1: Decay fails to yield fast approximate progress.

   The two-balls construction: B1 holds two broadcasting nodes, B2 holds
   Delta broadcasting nodes at distance 2R.  Under Decay, whenever B1's
   probabilities rise high enough to transmit, B2's crowd is transmitting
   too and drowns the cross-ball noise floor: progress inside B1 needs
   Omega(Delta * log(1/eps)) slots.  Algorithm 9.1 sparsifies B2 away and
   stays polylogarithmic.

   Measured event: the first slot at which either B1 node decodes the
   other B1 node's payload (they are strong neighbors). *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_stats
open Sinr_mac

(* First slot at which some B1 node receives from the other B1 node, under
   a per-slot decide function. *)
let b1_progress engine (tb : Placement.two_balls) ~decide ~on_delivery
    ~max_slots =
  let a = tb.Placement.ball1.(0) and b = tb.Placement.ball1.(1) in
  let hit = ref None in
  let budget = ref max_slots in
  while !hit = None && !budget > 0 do
    let ds = Engine.step engine ~decide in
    on_delivery ds;
    List.iter
      (fun d ->
        let r = d.Engine.receiver and s = d.Engine.sender in
        if (r = a && s = b) || (r = b && s = a) then
          hit := Some (Engine.slot engine))
      ds;
    decr budget
  done;
  !hit

let decay_trial ~seed ~delta =
  let rng = Rng.create (0xDECA + (seed * 31)) in
  let d, tb = Workloads.two_balls (Rng.split rng ~key:0) ~delta in
  let sinr = d.Workloads.sinr in
  let n = Sinr.n sinr in
  let lambda = d.Workloads.profile.Induced.lambda in
  let decay =
    Decay.create
      ~n_tilde:(Params.contention_default ~lambda)
      ~n ~rng:(Rng.split rng ~key:1)
  in
  let engine = Engine.create sinr in
  for v = 0 to n - 1 do
    Engine.wake engine v;
    Decay.start decay ~node:v ~slot:0 { Events.origin = v; seq = 0; data = v }
  done;
  b1_progress engine tb
    ~decide:(fun v ->
      match Decay.decide decay ~node:v ~slot:(Engine.slot engine) with
      | Some w -> Engine.Transmit w
      | None -> Engine.Listen)
    ~on_delivery:(fun _ -> ())
    ~max_slots:3_000_000

let approg_trial ~seed ~delta =
  let rng = Rng.create (0xA1 + (seed * 37)) in
  let d, tb = Workloads.two_balls (Rng.split rng ~key:0) ~delta in
  let sinr = d.Workloads.sinr in
  let n = Sinr.n sinr in
  let config = Sinr.config sinr in
  let lambda = d.Workloads.profile.Induced.lambda in
  let machine =
    Approx_progress.create Params.default_approg config ~lambda ~n
      ~rng:(Rng.split rng ~key:1)
  in
  let engine = Engine.create sinr in
  for v = 0 to n - 1 do
    Engine.wake engine v;
    Approx_progress.start machine ~node:v
      { Events.origin = v; seq = 0; data = v }
  done;
  let sched = Approx_progress.schedule machine in
  b1_progress engine tb
    ~decide:(fun v ->
      match Approx_progress.decide machine ~node:v with
      | Some w -> Engine.Transmit w
      | None -> Engine.Listen)
    ~on_delivery:(fun ds ->
      List.iter
        (fun dv ->
          Approx_progress.on_receive machine ~receiver:dv.Engine.receiver
            ~sender:dv.Engine.sender dv.Engine.message)
        ds;
      ignore (Approx_progress.end_slot machine))
    ~max_slots:(10 * sched.Params.epoch_slots)

type row = {
  delta : int;
  decay : Summary.t option;
  decay_timeouts : int;
  approg : Summary.t option;
  approg_timeouts : int;
}

let row ~seeds ~delta =
  let decay, decay_timeouts =
    Report.trials ~seeds (fun seed ->
        Option.map float_of_int (decay_trial ~seed ~delta))
  in
  let approg, approg_timeouts =
    Report.trials ~seeds (fun seed ->
        Option.map float_of_int (approg_trial ~seed ~delta))
  in
  { delta; decay; decay_timeouts; approg; approg_timeouts }

let run ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(deltas = [ 32; 64; 128; 256 ]) () =
  Report.section "E4: Decay fails approximate progress (Theorem 8.1)";
  let table =
    Table.create
      ~title:
        "two-balls construction: slots until a B1 node hears its B1 \
         neighbor"
      ~header:
        [ "delta (B2)"; "Decay mean"; "Decay t/o"; "Alg 9.1 mean";
          "Alg 9.1 t/o" ]
      ()
  in
  let rows = List.map (fun delta -> row ~seeds ~delta) deltas in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          Report.mean_cell r.decay;
          string_of_int r.decay_timeouts;
          Report.mean_cell r.approg;
          string_of_int r.approg_timeouts ])
    rows;
  Report.emit table;
  (match
     List.filter (fun r -> r.decay <> None && r.approg <> None) rows
   with
   | [] | [ _ ] -> print_endline "shape check: not enough complete rows"
   | complete ->
     let deltas_f =
       Array.of_list (List.map (fun r -> float_of_int r.delta) complete)
     in
     let decay_means =
       Array.of_list
         (List.map (fun r -> (Option.get r.decay).Summary.mean) complete)
     in
     print_endline
       (Report.shape_verdict ~label:"Decay ~ Delta (Theorem 8.1)" deltas_f
          decay_means);
     let first = List.hd complete and last = List.nth complete (List.length complete - 1) in
     Fmt.pr
       "separation: Delta grew %.1fx; Decay grew %.2fx while Algorithm 9.1 \
        grew %.2fx@."
       (float_of_int last.delta /. float_of_int first.delta)
       ((Option.get last.decay).Summary.mean
        /. (Option.get first.decay).Summary.mean)
       ((Option.get last.approg).Summary.mean
        /. (Option.get first.approg).Summary.mean));
  rows
