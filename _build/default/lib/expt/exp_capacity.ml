(* E11 — simulator capacity: the full stack at production scale.

   Not a paper claim, but a release-quality requirement: the exact SINR
   simulation (O(senders * n) per slot) and the complete Algorithm 9.1
   machinery must handle deployments of several hundred nodes at
   interactive wall times.  Runs pure approximate progress on growing
   uniform deployments and reports rounds, wall time, and slots/second. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_mac

type row = {
  n : int;
  delta : int;
  lambda : float;
  success : float;
  slots : int;        (* simulated slots *)
  wall_s : float;
  slots_per_s : float;
}

let row ~seed ~n =
  let rng = Rng.create (0xCA0 + seed + n) in
  let d =
    Workloads.connected rng (fun r ->
        Workloads.uniform r ~n ~target_degree:12)
  in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
  let sched =
    Params.schedule
      (Sinr.config d.Workloads.sinr)
      ~lambda:d.Workloads.profile.Induced.lambda Params.default_approg
  in
  let budget = 3 * sched.Params.epoch_slots in
  let t0 = Unix.gettimeofday () in
  let samples, machine =
    Measure.approx_progress_only d.Workloads.sinr
      ~rng:(Rng.split rng ~key:1) ~senders ~max_slots:budget
  in
  let wall = Unix.gettimeofday () -. t0 in
  ignore machine;
  let done_ = List.filter (fun s -> s.Measure.delay <> None) samples in
  let slots =
    (* The driver stops at completion; the last recorded delay bounds the
       simulated slots from below, the budget from above. *)
    List.fold_left
      (fun acc s -> match s.Measure.delay with Some t -> max acc t | None -> acc)
      0 samples
    |> fun last -> if List.length done_ = List.length samples then last else budget
  in
  { n;
    delta = d.Workloads.profile.Induced.strong_degree;
    lambda = d.Workloads.profile.Induced.lambda;
    success =
      (match samples with
       | [] -> 1.
       | _ ->
         float_of_int (List.length done_) /. float_of_int (List.length samples));
    slots;
    wall_s = wall;
    slots_per_s = (if wall > 0. then float_of_int slots /. wall else 0.) }

let run ?(seed = 1) ?(ns = [ 100; 250; 500 ]) () =
  Report.section "E11: simulator capacity (full Algorithm 9.1 stack)";
  let table =
    Table.create ~title:"pure approximate progress on growing deployments"
      ~header:[ "n"; "Delta"; "Lambda"; "success"; "slots"; "wall (s)"; "slots/s" ]
      ()
  in
  let rows = List.map (fun n -> row ~seed ~n) ns in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.n;
          string_of_int r.delta;
          Fmt.str "%.1f" r.lambda;
          Fmt.str "%.2f" r.success;
          string_of_int r.slots;
          Fmt.str "%.2f" r.wall_s;
          Fmt.str "%.0f" r.slots_per_s ])
    rows;
  Report.emit table;
  rows
