(* E9 — MAC implementation face-off: Algorithm 11.1 vs the Decay-based
   absMAC of [37]'s style.

   Theorem 8.1 says Decay-style local broadcast cannot give fast
   approximate progress; Algorithm 9.1 exists precisely to beat it.  This
   experiment runs both *complete MAC layers* (not just the raw
   strategies) on the same deployments and compares:

   - approximate-progress delay at covered listeners (continuous
     broadcasts), and
   - acknowledgment delay and niceness (via Spec_check on the recorded
     traces).

   Workloads: a dense uniform deployment (high contention regime) and the
   Theorem 8.1 two-balls construction. *)

open Sinr_geom
open Sinr_graph
open Sinr_stats
open Sinr_phys
open Sinr_engine
open Sinr_mac
open Sinr_proto

(* Generic progress measurement over any Mac_driver: continuous broadcasts
   from [senders]; for every covered listener, the first rcv whose origin
   is a strong neighbor. *)
let progress_under driver ~strong ~approx ~senders ~n ~max_steps =
  let listeners =
    Measure.covered_listeners ~approx_graph:approx ~senders ~n
  in
  let first = Array.make n None in
  let remaining = ref (List.length listeners) in
  let watched = Array.make n false in
  List.iter (fun i -> watched.(i) <- true) listeners;
  driver.Mac_driver.set_handlers
    { Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          if watched.(node) && first.(node) = None
             && Graph.mem_edge strong node payload.Events.origin
          then begin
            first.(node) <- Some (driver.Mac_driver.now ());
            decr remaining
          end);
      on_ack =
        (fun ~node ~payload ->
          ignore
            (driver.Mac_driver.bcast ~node ~data:payload.Events.data)) };
  List.iter (fun v -> ignore (driver.Mac_driver.bcast ~node:v ~data:v)) senders;
  let budget = ref max_steps in
  while !remaining > 0 && !budget > 0 do
    driver.Mac_driver.step ();
    decr budget
  done;
  let delays = List.filter_map (fun i -> first.(i)) listeners in
  let success =
    match listeners with
    | [] -> 1.0
    | _ ->
      float_of_int (List.length delays) /. float_of_int (List.length listeners)
  in
  let p90 =
    match delays with
    | [] -> None
    | _ ->
      Some
        (Summary.of_samples (Array.of_list (List.map float_of_int delays)))
        |> Option.map (fun s -> s.Summary.p90)
  in
  (p90, success)

(* Ack behaviour: one simultaneous batch of broadcasts, scored by
   Spec_check over the trace. *)
let acks_under ~mk_driver ~strong ~senders ~max_steps =
  let trace = Trace.create () in
  let driver = mk_driver ~trace in
  let outstanding = ref (List.length senders) in
  driver.Mac_driver.set_handlers
    { Absmac_intf.on_rcv = (fun ~node:_ ~payload:_ -> ());
      on_ack = (fun ~node:_ ~payload:_ -> decr outstanding) };
  List.iter (fun v -> ignore (driver.Mac_driver.bcast ~node:v ~data:v)) senders;
  let budget = ref max_steps in
  while !outstanding > 0 && !budget > 0 do
    driver.Mac_driver.step ();
    decr budget
  done;
  let horizon = driver.Mac_driver.now () in
  let r =
    Spec_check.check trace ~graph:strong
      ~f_ack:driver.Mac_driver.bounds.Absmac_intf.f_ack
      ~f_prog:driver.Mac_driver.bounds.Absmac_intf.f_ack ~horizon
  in
  let mean_delay =
    match r.Spec_check.ack_delays with
    | [] -> None
    | ds ->
      Some
        (List.fold_left ( +. ) 0. (List.map float_of_int ds)
         /. float_of_int (List.length ds))
  in
  let nice_frac =
    let total = r.Spec_check.nice + r.Spec_check.not_nice in
    if total = 0 then 0. else float_of_int r.Spec_check.nice /. float_of_int total
  in
  (mean_delay, nice_frac)

type row = {
  workload : string;
  mac : string;
  progress_p90 : float option;
  progress_success : float;
  ack_mean : float option;
  nice : float;
}

let compare_on ~label ~seed sinr ~senders ~max_steps =
  let config = Sinr.config sinr in
  let pts = Sinr.points sinr in
  let strong = Induced.strong config pts in
  let approx = Induced.approx config pts in
  let n = Sinr.n sinr in
  let run mac_name mk_plain mk_traced =
    let p90, success =
      progress_under (mk_plain ()) ~strong ~approx ~senders ~n ~max_steps
    in
    let ack_mean, nice =
      acks_under ~mk_driver:mk_traced ~strong ~senders ~max_steps
    in
    { workload = label;
      mac = mac_name;
      progress_p90 = p90;
      progress_success = success;
      ack_mean;
      nice }
  in
  let combined =
    run "alg 11.1"
      (fun () ->
        Mac_driver.of_combined
          (Combined_mac.create sinr ~rng:(Rng.create (seed + 1))))
      (fun ~trace ->
        Mac_driver.of_combined
          (Combined_mac.create ~trace sinr ~rng:(Rng.create (seed + 2))))
  in
  let decay =
    run "decay-mac"
      (fun () ->
        Mac_driver.of_decay (Decay_mac.create sinr ~rng:(Rng.create (seed + 3))))
      (fun ~trace ->
        Mac_driver.of_decay
          (Decay_mac.create ~trace sinr ~rng:(Rng.create (seed + 4))))
  in
  [ combined; decay ]

let run ?(seed = 5) () =
  Report.section
    "E9: MAC face-off — Algorithm 11.1 vs a Decay-based absMAC ([37]-style)";
  let rows = ref [] in
  (* Dense uniform deployment: the contention regime. *)
  let rng = Rng.create (0xE9 + seed) in
  let dense =
    Sinr.create Config.default
      (Placement.uniform rng ~n:50 ~box:(Box.square ~side:18.) ~min_dist:1.)
  in
  let senders = List.filter (fun v -> v mod 2 = 0) (List.init 50 Fun.id) in
  rows := compare_on ~label:"dense uniform" ~seed dense ~senders
      ~max_steps:600_000;
  (* Theorem 8.1's two-balls construction. *)
  let d, tb = Workloads.two_balls (Rng.split rng ~key:7) ~delta:96 in
  let all =
    Array.to_list tb.Placement.ball1 @ Array.to_list tb.Placement.ball2
  in
  let tb_rows =
    compare_on ~label:"two-balls d=96" ~seed d.Workloads.sinr
      ~senders:(List.filter (fun v -> v <> tb.Placement.ball1.(0)) all)
      ~max_steps:600_000
  in
  rows := !rows @ tb_rows;
  let table =
    Table.create ~title:"same deployments, two complete MAC layers"
      ~header:
        [ "workload"; "mac"; "approg p90"; "success"; "ack mean"; "nice" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.workload;
          r.mac;
          (match r.progress_p90 with
           | Some v -> Fmt.str "%.0f" v
           | None -> "timeout");
          Fmt.str "%.2f" r.progress_success;
          (match r.ack_mean with Some v -> Fmt.str "%.0f" v | None -> "-");
          Fmt.str "%.2f" r.nice ])
    !rows;
  Report.emit table;
  print_endline
    "reading guide: without coordination the Decay layer can only ack \
     after a worst-case budget of order N~ = 4*Lambda^2 slots, so its \
     f_ack explodes with Lambda (see the two-balls row), while Algorithm \
     11.1's acknowledgments track the actual contention.  On raw progress \
     delay the Decay sweep is quick at these sizes; its Omega(Delta) \
     *growth* — the Theorem 8.1 separation — is measured by experiment E4.";
  !rows
