(* E1 — Table 1, f_ack row, plus Remark 5.3's Delta lower bound.

   Workload: the star construction (a hub with Delta broadcasting leaves)
   gives worst-case contention, plus uniform deployments for the typical
   case.  Every leaf broadcasts simultaneously; we record the bcast->ack
   delay of each and whether the broadcast was nice (all strong neighbors
   received it first).

   Expected shape (Theorem 5.1): delay grows linearly in Delta with a
   log(Lambda/eps) factor; Remark 5.3 says no implementation can beat
   Delta. *)

open Sinr_geom
open Sinr_stats
open Sinr_mac

type row = {
  delta : int;        (* realized max degree *)
  lambda : float;
  measured : Summary.t option;
  timeouts : int;
  nice_frac : float;  (* fraction of acks preceded by all-neighbor rcvs *)
  formula : float;
}

let star_row ~seeds ~delta =
  let eps_ack = Params.default_ack.Params.eps_ack in
  let nice = ref 0 and total = ref 0 in
  let realized_delta = ref 0 and realized_lambda = ref 1. in
  let trial seed =
    let rng = Rng.create (0x5A1 + seed) in
    let d, s = Workloads.star rng ~delta in
    realized_delta := d.Workloads.profile.Sinr_phys.Induced.strong_degree;
    realized_lambda := d.Workloads.profile.Sinr_phys.Induced.lambda;
    let samples =
      Measure.acks d.Workloads.sinr
        ~rng:(Rng.split rng ~key:1)
        ~senders:(Array.to_list s.Placement.leaves)
        ~max_slots:4_000_000
    in
    match samples with
    | [] -> None
    | _ ->
      List.iter
        (fun (a : Measure.ack_sample) ->
          incr total;
          if a.Measure.reached = a.Measure.neighbors then incr nice)
        samples;
      let mean =
        List.fold_left (fun acc (a : Measure.ack_sample) -> acc +. float_of_int a.Measure.delay) 0.
          samples
        /. float_of_int (List.length samples)
      in
      Some mean
  in
  let measured, timeouts = Report.trials ~seeds trial in
  { delta = !realized_delta;
    lambda = !realized_lambda;
    measured;
    timeouts;
    nice_frac =
      (if !total = 0 then 0. else float_of_int !nice /. float_of_int !total);
    formula =
      Params.f_ack_formula ~delta:!realized_delta ~lambda:!realized_lambda
        ~eps_ack }

let run ?(seeds = [ 1; 2; 3 ]) ?(deltas = [ 4; 8; 16; 32 ]) () =
  Report.section
    "E1: f_ack on the star construction (Table 1 row 1, Remark 5.3)";
  let table =
    Table.create ~title:"acknowledgment delay vs contention Delta"
      ~header:
        [ "delta"; "lambda"; "mean f_ack (slots)"; "timeouts"; "nice";
          "formula D*log(L/e)+logL*log(L/e)" ]
      ()
  in
  let rows = List.map (fun delta -> star_row ~seeds ~delta) deltas in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          Fmt.str "%.1f" r.lambda;
          Report.mean_cell r.measured;
          string_of_int r.timeouts;
          Fmt.str "%.2f" r.nice_frac;
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  let usable = List.filter (fun r -> r.measured <> None) rows in
  let preds = Array.of_list (List.map (fun r -> r.formula) usable) in
  let ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.measured).Summary.mean) usable)
  in
  print_endline (Report.shape_verdict ~label:"f_ack vs Theorem 5.1" preds ms);
  rows
