(** E1 — Table 1's f_ack row and Remark 5.3's Δ lower bound, on the star
    contention workload. *)

open Sinr_stats

type row = {
  delta : int;
  lambda : float;
  measured : Summary.t option;
  timeouts : int;
  nice_frac : float;
  formula : float;
}

val run : ?seeds:int list -> ?deltas:int list -> unit -> row list
(** Prints the table and the shape verdict; returns the rows. *)
