(* E2 — Theorem 6.1 / Figure 1: the impossibility of fast progress.

   On the two-parallel-lines construction (R(1-eps) = 10*Delta) we verify
   the combinatorial facts the proof rests on, then measure the best
   centrally-scheduled progress time, which equals Delta — while the
   f_approg formula stays polylogarithmic, and approximate progress is
   *vacuous* here because the cross links are longer than R(1-2eps).
   That contrast is exactly why the paper replaces progress by approximate
   progress. *)

open Sinr_phys
open Sinr_graph
open Sinr_stats
open Sinr_mac

type row = {
  delta : int;
  pair_blockings_ok : bool; (* no cross delivery under any 2-sender set *)
  optimal_progress : int;   (* slots of the best central schedule *)
  covered_by_approx : int;  (* listeners Def 7.1 would cover: 0 *)
  f_approg_formula : float;
}

(* Exhaustively check: for every pair of concurrent senders from V, no
   receiver in U decodes anything from a strong neighbor. *)
let check_pair_blocking sinr strong (tl : Sinr_geom.Placement.two_lines) =
  let ok = ref true in
  let delta = Array.length tl.Sinr_geom.Placement.senders in
  for i = 0 to delta - 1 do
    for j = i + 1 to delta - 1 do
      let senders =
        [ tl.Sinr_geom.Placement.senders.(i); tl.Sinr_geom.Placement.senders.(j) ]
      in
      Array.iter
        (fun u ->
          match Sinr.reception sinr ~senders ~receiver:u with
          | Some v when Graph.mem_edge strong u v -> ok := false
          | Some _ | None -> ())
        tl.Sinr_geom.Placement.receivers
    done
  done;
  !ok

(* The optimal central schedule: one sender per slot (any more blocks
   everything); the last receiver's first neighbor-reception time. *)
let optimal_schedule_progress sinr strong (tl : Sinr_geom.Placement.two_lines) =
  let delta = Array.length tl.Sinr_geom.Placement.senders in
  let first = Array.make (Array.length tl.Sinr_geom.Placement.points) None in
  for slot = 0 to delta - 1 do
    let out =
      Sinr.resolve sinr ~senders:[ tl.Sinr_geom.Placement.senders.(slot) ]
    in
    Array.iteri
      (fun u s ->
        match s with
        | Some v when Graph.mem_edge strong u v && first.(u) = None ->
          first.(u) <- Some (slot + 1)
        | Some _ | None -> ())
      out
  done;
  Array.fold_left
    (fun acc u -> match first.(u) with Some s -> max acc s | None -> acc)
    0
    tl.Sinr_geom.Placement.receivers

let row ~delta =
  let d, tl = Workloads.fig1 ~delta in
  let sinr = d.Workloads.sinr in
  let strong = d.Workloads.profile.Induced.strong in
  let approx = d.Workloads.profile.Induced.approx in
  let covered =
    Measure.covered_listeners ~approx_graph:approx
      ~senders:(Array.to_list tl.Sinr_geom.Placement.senders)
      ~n:(Array.length tl.Sinr_geom.Placement.points)
  in
  { delta;
    pair_blockings_ok = check_pair_blocking sinr strong tl;
    optimal_progress = optimal_schedule_progress sinr strong tl;
    covered_by_approx = List.length covered;
    f_approg_formula =
      Params.f_approg_formula (Sinr.config sinr)
        ~lambda:d.Workloads.profile.Induced.lambda
        ~eps_approg:Params.default_approg.Params.eps_approg }

let run ?(deltas = [ 4; 8; 16; 32 ]) () =
  Report.section
    "E2: impossibility of fast progress (Theorem 6.1 / Figure 1)";
  let table =
    Table.create
      ~title:
        "two-lines construction: any 2 concurrent senders block all cross \
         links; the optimal schedule needs Delta slots"
      ~header:
        [ "delta"; "2-sender blocking"; "optimal f_prog"; "G~ coverage";
          "f_approg formula" ]
      ()
  in
  let rows = List.map (fun delta -> row ~delta) deltas in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          (if r.pair_blockings_ok then "verified" else "VIOLATED");
          string_of_int r.optimal_progress;
          Fmt.str "%d (vacuous)" r.covered_by_approx;
          Fmt.str "%.0f" r.f_approg_formula ])
    rows;
  Report.emit table;
  let deltas_f = Array.of_list (List.map (fun r -> float_of_int r.delta) rows) in
  let opt = Array.of_list (List.map (fun r -> float_of_int r.optimal_progress) rows) in
  print_endline
    (Report.shape_verdict ~label:"optimal progress = Delta (lower bound)"
       deltas_f opt);
  print_endline
    "note: f_prog grows linearly in Delta even for a clairvoyant central \
     scheduler, while the f_approg formula stays polylogarithmic — and on \
     this construction approximate progress demands nothing (0 covered \
     listeners), which is how the modified specification escapes the bound.";
  rows
