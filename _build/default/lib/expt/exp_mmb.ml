(* E6 — Table 1, global MMB row (Theorem 12.7, second bound).

   k messages arrive at random distinct nodes of a uniform deployment; we
   run BMMB over the combined MAC and record the completion time.  The
   paper's point versus the naive pipeline (runtime (D + k) * Delta-ish,
   Section 2.1): the dependence on k must be additive —
   D*polylog + k*(Delta + polylog)*log — not multiplicative in D*Delta. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_proto

type row = {
  k : int;
  delta : int;
  diameter : int;
  completed : Summary.t option;
  timeouts : int;
  naive : Summary.t option;    (* the [29]-derived sequential pipeline *)
  naive_timeouts : int;
  formula : float;
}

let formula ~k ~delta ~lambda ~diameter ~n =
  (* D*log^{alpha+1}(Lambda) + k*(Delta + polylog)*log(nk) with unit
     constants, for the shape comparison. *)
  let alpha = Config.default.Config.alpha in
  let loglam = Float.max 1. (Float.log2 (Float.max 2. lambda)) in
  let lognk = Float.max 1. (Float.log2 (float_of_int (n * k))) in
  (float_of_int diameter *. (loglam ** (alpha +. 1.)))
  +. (float_of_int k *. (float_of_int delta +. (loglam *. lognk)) *. lognk)

let sources_of rng ~n ~k =
  let nodes = Array.init n Fun.id in
  Rng.shuffle rng nodes;
  List.init k (fun i -> (nodes.(i mod n), 1000 + i))

let row ~seeds ~n ~target_degree ~k =
  let delta = ref 0 and diameter = ref 0 and lambda = ref 1. in
  let completed, timeouts =
    Report.trials ~seeds (fun seed ->
        let rng = Rng.create (0xB3B + (seed * 53)) in
        let d =
          Workloads.connected (Rng.split rng ~key:0) (fun r ->
              Workloads.uniform r ~n ~target_degree)
        in
        delta := d.Workloads.profile.Induced.strong_degree;
        diameter := d.Workloads.profile.Induced.strong_diameter;
        lambda := d.Workloads.profile.Induced.lambda;
        let sources = sources_of (Rng.split rng ~key:1) ~n ~k in
        let r =
          Global.mmb d.Workloads.sinr ~rng:(Rng.split rng ~key:2) ~sources
            ~max_slots:8_000_000
        in
        Report.opt_int_to_float r.Global.completed)
  in
  let naive, naive_timeouts =
    Report.trials ~seeds (fun seed ->
        let rng = Rng.create (0xB3B + (seed * 53)) in
        let d =
          Workloads.connected (Rng.split rng ~key:0) (fun r ->
              Workloads.uniform r ~n ~target_degree)
        in
        let sources = sources_of (Rng.split rng ~key:1) ~n ~k in
        let r =
          Hm_flood.mmb_sequential d.Workloads.sinr
            ~rng:(Rng.split rng ~key:3) ~sources ~max_slots:8_000_000
        in
        Report.opt_int_to_float r.Hm_flood.completed)
  in
  { k;
    delta = !delta;
    diameter = !diameter;
    completed;
    timeouts;
    naive;
    naive_timeouts;
    formula = formula ~k ~delta:!delta ~lambda:!lambda ~diameter:!diameter ~n }

let run ?(seeds = [ 1; 2; 3 ]) ?(n = 30) ?(target_degree = 8)
    ?(ks = [ 1; 2; 4; 8 ]) () =
  Report.section "E6: global multi-message broadcast (Table 1, Theorem 12.7)";
  let table =
    Table.create ~title:"MMB completion vs number of messages k"
      ~header:
        [ "k"; "Delta"; "D"; "ours (BMMB) mean"; "t/o";
          "naive [29] pipeline"; "t/o";
          "formula D*polylogL + k(D+polylog)*log(nk)" ]
      ()
  in
  let rows = List.map (fun k -> row ~seeds ~n ~target_degree ~k) ks in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.k;
          string_of_int r.delta;
          string_of_int r.diameter;
          Report.mean_cell r.completed;
          string_of_int r.timeouts;
          Report.mean_cell r.naive;
          string_of_int r.naive_timeouts;
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  let usable = List.filter (fun r -> r.completed <> None) rows in
  let preds = Array.of_list (List.map (fun r -> r.formula) usable) in
  let ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.completed).Summary.mean) usable)
  in
  print_endline (Report.shape_verdict ~label:"MMB additive in k" preds ms);
  (* The naive pipeline's predicted growth is (D + k) floods (Section 2.1). *)
  let naive_usable = List.filter (fun r -> r.naive <> None) rows in
  let naive_preds =
    Array.of_list
      (List.map (fun r -> float_of_int (r.diameter + r.k)) naive_usable)
  in
  let naive_ms =
    Array.of_list
      (List.map (fun r -> (Option.get r.naive).Summary.mean) naive_usable)
  in
  print_endline
    (Report.shape_verdict ~label:"naive pipeline ~ (D + k)" naive_preds
       naive_ms);
  print_endline
    "note: at laptop scale the pipeline's constants win — Algorithm B.1 \
     delivers much faster than it acknowledges, and BMMB serializes on \
     acknowledgments.  The paper's claim is about the growth shapes \
     checked above: ours follows D*polylog + k*(Delta+polylog)*log with \
     no D*Delta product, while the pipeline runs (D+k) floods whose \
     per-hop cost carries the Delta*log(n) w.h.p. factor asymptotically.";
  rows
