(** E5 — Table 2 / Theorem 12.7: global SMB, ours vs the [14]-style and
    [32]-class baselines, swept over diameter and Λ. *)

open Sinr_stats

type row = {
  label : string;
  diameter : int;
  lambda : float;
  ours : Summary.t option;
  ours_timeouts : int;
  dgkn : Summary.t option;
  dgkn_timeouts : int;
  decay : Summary.t option;
  decay_timeouts : int;
}

val run_diameter : ?seeds:int list -> ?hops:int list -> unit -> row list
val run_lambda :
  ?seeds:int list -> ?ranges:float list -> ?n:int -> unit -> row list
val run_size :
  ?seeds:int list -> ?ns:int list -> ?target_degree:int -> unit -> row list
