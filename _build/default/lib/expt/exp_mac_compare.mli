(** E9 — Algorithm 11.1 vs a Decay-based absMAC on the same deployments:
    approximate-progress delay, ack delay and niceness. *)

type row = {
  workload : string;
  mac : string;
  progress_p90 : float option;
  progress_success : float;
  ack_mean : float option;
  nice : float;
}

val run : ?seed:int -> unit -> row list
