(** E3 — Table 1's f_approg row (Theorem 9.1): density sweep showing the
    Δ-free delay, and ε sweep showing the log(1/ε) scaling. *)

type density_row = {
  delta : int;
  lambda : float;
  approg_p90 : float option;
  approg_success : float;
  ack_mean : float option;
  epoch_slots : int;
  approg_formula : float;
}

val run_density :
  ?seeds:int list -> ?n:int -> ?sides:float list -> unit -> density_row list

type eps_row = {
  eps : float;
  p90 : float option;
  success : float;
  epoch_slots : int;
  formula : float;
}

val run_eps :
  ?seeds:int list -> ?n:int -> ?side:float -> ?epsilons:float list -> unit ->
  eps_row list
