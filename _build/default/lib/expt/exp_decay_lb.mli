(** E4 — Theorem 8.1: Decay needs Ω(Δ·log(1/ε)) for approximate progress on
    the two-balls construction, while Algorithm 9.1 stays polylog. *)

open Sinr_stats

type row = {
  delta : int;
  decay : Summary.t option;
  decay_timeouts : int;
  approg : Summary.t option;
  approg_timeouts : int;
}

val run : ?seeds:int list -> ?deltas:int list -> unit -> row list
