(** E2 — Theorem 6.1 / Figure 1: impossibility of fast progress on the
    two-parallel-lines construction. *)

type row = {
  delta : int;
  pair_blockings_ok : bool;
  optimal_progress : int;
  covered_by_approx : int;
  f_approg_formula : float;
}

val run : ?deltas:int list -> unit -> row list
