(** Shared reporting helpers for the experiment harness. *)

open Sinr_stats

val trials :
  seeds:int list -> (int -> float option) -> Summary.t option * int
(** Run one trial per seed; returns the summary of successful trials and
    the number of timeouts. *)

val mean_cell : Summary.t option -> string
val opt_int_to_float : int option -> float option

val shape_verdict : label:string -> float array -> float array -> string
(** Proportional-fit verdict comparing measurements to the paper's formula
    (constant, R², end-to-end growth ratio). *)

val emit : Sinr_stats.Table.t -> unit
(** Print the table; if the SINR_CSV_DIR environment variable is set, also
    write it there as CSV. *)

val section : string -> unit
(** Print a section banner. *)
