lib/expt/exp_progress_lb.mli:
