lib/expt/workloads.ml: Box Config Float Fmt Induced Placement Rng Sinr Sinr_geom Sinr_graph Sinr_phys
