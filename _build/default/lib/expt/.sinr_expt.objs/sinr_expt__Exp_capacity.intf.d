lib/expt/exp_capacity.mli:
