lib/expt/exp_smb.mli: Sinr_stats Summary
