lib/expt/report.mli: Sinr_stats Summary
