lib/expt/exp_ablation.mli:
