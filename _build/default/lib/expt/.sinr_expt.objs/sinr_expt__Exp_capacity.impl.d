lib/expt/exp_capacity.ml: Fmt Fun Induced List Measure Params Report Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_stats Table Unix Workloads
