lib/expt/exp_approg.mli:
