lib/expt/exp_smb.ml: Decay_flood Dgkn_broadcast Fmt Global Induced List Report Rng Sinr_geom Sinr_phys Sinr_proto Sinr_stats Summary Table Workloads
