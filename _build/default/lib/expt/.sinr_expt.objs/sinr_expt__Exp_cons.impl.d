lib/expt/exp_cons.ml: Array Box Config Float Fmt Global Induced List Option Placement Report Rng Sinr Sinr_engine Sinr_geom Sinr_phys Sinr_proto Sinr_stats Summary Table Workloads
