lib/expt/exp_approg.ml: Array Config Fmt Fun Induced List Measure Option Params Report Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_stats Summary Table Workloads
