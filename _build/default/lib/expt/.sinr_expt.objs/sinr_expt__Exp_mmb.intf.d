lib/expt/exp_mmb.mli: Sinr_stats Summary
