lib/expt/exp_decay_lb.mli: Sinr_stats Summary
