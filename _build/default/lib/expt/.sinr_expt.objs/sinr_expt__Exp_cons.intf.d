lib/expt/exp_cons.mli: Sinr_stats Summary
