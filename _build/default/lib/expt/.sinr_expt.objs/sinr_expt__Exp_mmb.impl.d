lib/expt/exp_mmb.ml: Array Config Float Fmt Fun Global Hm_flood Induced List Option Report Rng Sinr_geom Sinr_phys Sinr_proto Sinr_stats Summary Table Workloads
