lib/expt/exp_ack.mli: Sinr_stats Summary
