lib/expt/report.ml: Array Filename Fit Fmt List Option Sinr_stats String Summary Sys Unix
