lib/expt/exp_progress_lb.ml: Array Fmt Graph Induced List Measure Params Report Sinr Sinr_geom Sinr_graph Sinr_mac Sinr_phys Sinr_stats Table Workloads
