lib/expt/exp_ack.ml: Array Fmt List Measure Option Params Placement Report Rng Sinr_geom Sinr_mac Sinr_phys Sinr_stats Summary Table Workloads
