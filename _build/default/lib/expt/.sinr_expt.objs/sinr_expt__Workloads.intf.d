lib/expt/workloads.mli: Config Induced Placement Point Rng Sinr Sinr_geom Sinr_phys
