lib/expt/exp_mac_compare.mli:
