lib/expt/exp_ablation.ml: Approx_progress Array Fmt Fun Induced List Measure Option Params Report Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_stats Summary Table Workloads
