(* E3 — Table 1, f_approg row (Theorem 9.1).

   Two sweeps on uniform deployments with half the nodes broadcasting:

   (a) density sweep: Delta grows by shrinking the deployment box; the
       pure Algorithm 9.1 progress delay must stay flat (polylog) while
       the measured acknowledgment delay on the same instance grows with
       Delta — the headline separation of Remark 11.2;

   (b) epsilon sweep: f_approg grows like log(1/eps) as the requested
       success probability rises. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_mac

let delays_summary samples =
  let ds =
    List.filter_map
      (fun s -> Option.map float_of_int s.Measure.delay)
      samples
  in
  match ds with
  | [] -> None
  | _ -> Some (Summary.of_samples (Array.of_list ds))

let success_frac samples =
  match samples with
  | [] -> 1.0
  | _ ->
    float_of_int
      (List.length (List.filter (fun s -> s.Measure.delay <> None) samples))
    /. float_of_int (List.length samples)

type density_row = {
  delta : int;
  lambda : float;
  approg_p90 : float option;  (* pure Algorithm 9.1 *)
  approg_success : float;
  ack_mean : float option;    (* contrast: f_ack on the same instance *)
  epoch_slots : int;
  approg_formula : float;
}

let density_row ~seeds ~n ~side =
  let eps = Params.default_approg.Params.eps_approg in
  let delta = ref 0 and lambda = ref 1. and epoch = ref 0 in
  let p90s = ref [] and succ = ref [] and acks = ref [] in
  List.iter
    (fun seed ->
      let rng = Rng.create (0xA9 + (seed * 7919)) in
      let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
      delta := d.Workloads.profile.Induced.strong_degree;
      lambda := d.Workloads.profile.Induced.lambda;
      let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
      let sched =
        Params.schedule (Sinr.config d.Workloads.sinr) ~lambda:!lambda
          Params.default_approg
      in
      epoch := sched.Params.epoch_slots;
      let samples, _ =
        Measure.approx_progress_only d.Workloads.sinr
          ~rng:(Rng.split rng ~key:1) ~senders
          ~max_slots:(6 * sched.Params.epoch_slots)
      in
      (match delays_summary samples with
       | Some s -> p90s := s.Summary.p90 :: !p90s
       | None -> ());
      succ := success_frac samples :: !succ;
      let ack_samples =
        Measure.acks d.Workloads.sinr ~rng:(Rng.split rng ~key:2) ~senders
          ~max_slots:4_000_000
      in
      match ack_samples with
      | [] -> ()
      | _ ->
        let mean =
          List.fold_left
            (fun acc (a : Measure.ack_sample) -> acc +. float_of_int a.Measure.delay)
            0. ack_samples
          /. float_of_int (List.length ack_samples)
        in
        acks := mean :: !acks)
    seeds;
  let avg = function
    | [] -> None
    | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
  in
  { delta = !delta;
    lambda = !lambda;
    approg_p90 = avg !p90s;
    approg_success =
      (match avg !succ with Some v -> v | None -> 0.);
    ack_mean = avg !acks;
    epoch_slots = !epoch;
    approg_formula =
      Params.f_approg_formula Config.default ~lambda:!lambda ~eps_approg:eps }

let run_density ?(seeds = [ 1; 2; 3 ]) ?(n = 60)
    ?(sides = [ 44.; 30.; 21.; 15. ]) () =
  Report.section
    "E3a: f_approg vs density (Table 1 row 3, Theorem 9.1 / Remark 11.2)";
  let table =
    Table.create
      ~title:
        "approximate progress stays polylog while acknowledgments grow \
         with Delta (n fixed, box shrinking)"
      ~header:
        [ "Delta"; "Lambda"; "approg p90"; "success"; "f_ack mean";
          "epoch slots"; "f_approg formula" ]
      ()
  in
  let rows = List.map (fun side -> density_row ~seeds ~n ~side) sides in
  List.iter
    (fun r ->
      Table.add_row table
        [ string_of_int r.delta;
          Fmt.str "%.1f" r.lambda;
          (match r.approg_p90 with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          Fmt.str "%.2f" r.approg_success;
          (match r.ack_mean with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          string_of_int r.epoch_slots;
          Fmt.str "%.0f" r.approg_formula ])
    rows;
  Report.emit table;
  (match
     ( List.filter_map (fun r -> r.approg_p90) rows,
       List.filter_map (fun r -> r.ack_mean) rows )
   with
   | (a0 :: _ as approgs), (k0 :: _ as acks)
     when List.length approgs = List.length rows
          && List.length acks = List.length rows ->
     let a_last = List.nth approgs (List.length approgs - 1) in
     let k_last = List.nth acks (List.length acks - 1) in
     Fmt.pr
       "separation: Delta grew %.1fx; approg delay grew %.2fx while ack \
        delay grew %.2fx@."
       (float_of_int (List.nth rows (List.length rows - 1)).delta
        /. float_of_int (List.hd rows).delta)
       (a_last /. a0) (k_last /. k0)
   | _ -> print_endline "separation: incomplete data");
  rows

type eps_row = {
  eps : float;
  p90 : float option;
  success : float;
  epoch_slots : int;
  formula : float;
}

let eps_row ~seeds ~n ~side ~eps =
  let params = { Params.default_approg with Params.eps_approg = eps } in
  let p90s = ref [] and succ = ref [] in
  let epoch = ref 0 and lambda = ref 1. in
  List.iter
    (fun seed ->
      let rng = Rng.create (0xE5 + (seed * 104729)) in
      let d = Workloads.uniform_density (Rng.split rng ~key:0) ~n ~side in
      lambda := d.Workloads.profile.Induced.lambda;
      let sched =
        Params.schedule (Sinr.config d.Workloads.sinr) ~lambda:!lambda params
      in
      epoch := sched.Params.epoch_slots;
      let senders = List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id) in
      let samples, _ =
        Measure.approx_progress_only ~params d.Workloads.sinr
          ~rng:(Rng.split rng ~key:1) ~senders
          ~max_slots:(6 * sched.Params.epoch_slots)
      in
      (match delays_summary samples with
       | Some s -> p90s := s.Summary.p90 :: !p90s
       | None -> ());
      succ := success_frac samples :: !succ)
    seeds;
  let avg = function
    | [] -> None
    | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
  in
  { eps;
    p90 = avg !p90s;
    success = (match avg !succ with Some v -> v | None -> 0.);
    epoch_slots = !epoch;
    formula = Params.f_approg_formula Config.default ~lambda:!lambda ~eps_approg:eps }

let run_eps ?(seeds = [ 1; 2; 3 ]) ?(n = 50) ?(side = 25.)
    ?(epsilons = [ 0.3; 0.15; 0.075 ]) () =
  Report.section "E3b: f_approg vs requested error probability eps_approg";
  let table =
    Table.create ~title:"epoch length and delay grow like log(1/eps)"
      ~header:[ "eps"; "p90 delay"; "success"; "epoch slots"; "formula" ]
      ()
  in
  let rows = List.map (fun eps -> eps_row ~seeds ~n ~side ~eps) epsilons in
  List.iter
    (fun r ->
      Table.add_row table
        [ Fmt.str "%.3f" r.eps;
          (match r.p90 with Some v -> Fmt.str "%.0f" v | None -> "timeout");
          Fmt.str "%.2f" r.success;
          string_of_int r.epoch_slots;
          Fmt.str "%.0f" r.formula ])
    rows;
  Report.emit table;
  List.iter
    (fun r ->
      if r.success < 1. -. r.eps then
        Fmt.pr
          "WARNING: success %.2f below the requested 1 - eps = %.2f at \
           eps=%.3f@."
          r.success (1. -. r.eps) r.eps)
    rows;
  rows
