(* E5 — Table 2 and Theorem 12.7: global single-message broadcast.

   Three algorithms on the same deployments:

     ours          BSMB over the Algorithm 11.1 absMAC (Theorem 12.7),
     dgkn [14]     epoch machinery with w.h.p. parameters + relay,
     decay-flood   the [32]-class polylog(n)-per-hop baseline.

   Sweep (a) the diameter D on line deployments (Lambda small and fixed);
   sweep (b) the distance ratio Lambda at fixed n and density.  Table 2's
   claim: ours beats [14] across the board, and beats the [32]-class when
   log^{alpha+1} Lambda is small relative to log^2 n. *)

open Sinr_geom
open Sinr_stats
open Sinr_phys
open Sinr_proto

type row = {
  label : string;
  diameter : int;
  lambda : float;
  ours : Summary.t option;
  ours_timeouts : int;
  dgkn : Summary.t option;
  dgkn_timeouts : int;
  decay : Summary.t option;
  decay_timeouts : int;
}

let smb_row ~seeds ~label (mk : int -> Workloads.deployment) ~max_slots =
  let diameter = ref 0 and lambda = ref 1. in
  let ours, ours_timeouts =
    Report.trials ~seeds (fun seed ->
        let d = mk seed in
        diameter := d.Workloads.profile.Induced.strong_diameter;
        lambda := d.Workloads.profile.Induced.lambda;
        let r =
          Global.smb d.Workloads.sinr
            ~rng:(Rng.create (0x0541 + seed))
            ~source:0 ~max_slots
        in
        Report.opt_int_to_float r.Global.completed)
  in
  let dgkn, dgkn_timeouts =
    Report.trials ~seeds (fun seed ->
        let d = mk seed in
        let r =
          Dgkn_broadcast.run d.Workloads.sinr
            ~rng:(Rng.create (0x0D64 + seed))
            ~source:0 ~max_slots
        in
        Report.opt_int_to_float r.Dgkn_broadcast.completed)
  in
  let decay, decay_timeouts =
    Report.trials ~seeds (fun seed ->
        let d = mk seed in
        let r =
          Decay_flood.run d.Workloads.sinr
            ~rng:(Rng.create (0x0DEC + seed))
            ~source:0 ~max_slots
        in
        Report.opt_int_to_float r.Decay_flood.completed)
  in
  { label;
    diameter = !diameter;
    lambda = !lambda;
    ours;
    ours_timeouts;
    dgkn;
    dgkn_timeouts;
    decay;
    decay_timeouts }

let print_rows ~title rows =
  let table =
    Table.create ~title
      ~header:
        [ "workload"; "D"; "Lambda"; "ours (Thm 12.7)"; "t/o"; "dgkn [14]";
          "t/o"; "decay-flood [32]"; "t/o" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.label;
          string_of_int r.diameter;
          Fmt.str "%.1f" r.lambda;
          Report.mean_cell r.ours;
          string_of_int r.ours_timeouts;
          Report.mean_cell r.dgkn;
          string_of_int r.dgkn_timeouts;
          Report.mean_cell r.decay;
          string_of_int r.decay_timeouts ])
    rows;
  Report.emit table

let winners rows =
  List.iter
    (fun r ->
      match (r.ours, r.dgkn) with
      | Some o, Some d ->
        Fmt.pr "  %s: ours/dgkn = %.2f (Table 2 predicts < 1)%s@." r.label
          (o.Summary.mean /. d.Summary.mean)
          (match r.decay with
           | Some dec ->
             Fmt.str ", ours/decay-flood = %.2f"
               (o.Summary.mean /. dec.Summary.mean)
           | None -> "")
      | _ -> Fmt.pr "  %s: incomplete@." r.label)
    rows

let run_diameter ?(seeds = [ 1; 2; 3 ]) ?(hops = [ 4; 8; 16 ]) () =
  Report.section "E5a: global SMB vs diameter (Table 2, Theorem 12.7)";
  let rows =
    List.map
      (fun h ->
        smb_row ~seeds ~label:(Fmt.str "line D=%d" h)
          (fun seed ->
            ignore seed;
            Workloads.line ~hops:h ())
          ~max_slots:3_000_000)
      hops
  in
  print_rows ~title:"completion slots, diameter sweep (Lambda ~ const)" rows;
  winners rows;
  rows

let run_size ?(seeds = [ 1; 2; 3 ]) ?(ns = [ 20; 40; 80 ]) ?(target_degree = 8) () =
  Report.section "E5c: global SMB vs network size (Table 2 crossover, n side)";
  let rows =
    List.map
      (fun n ->
        smb_row ~seeds ~label:(Fmt.str "n=%d" n)
          (fun seed ->
            Workloads.connected
              (Rng.create (0x51E + (seed * 131) + n))
              (fun rng -> Workloads.uniform rng ~n ~target_degree))
          ~max_slots:3_000_000)
      ns
  in
  print_rows
    ~title:"completion slots, size sweep (Lambda, density fixed: decay-flood \
            pays log^2 n, ours does not)"
    rows;
  winners rows;
  rows

let run_lambda ?(seeds = [ 1; 2; 3 ]) ?(ranges = [ 6.; 12.; 24. ]) ?(n = 36) () =
  Report.section "E5b: global SMB vs Lambda (Table 2 crossover)";
  let rows =
    List.map
      (fun range ->
        smb_row ~seeds ~label:(Fmt.str "R=%.0f" range)
          (fun seed ->
            Workloads.connected
              (Rng.create (0x7A + (seed * 101)))
              (fun rng -> Workloads.lambda_sweep rng ~range ~n ~per_range:6))
          ~max_slots:3_000_000)
      ranges
  in
  print_rows ~title:"completion slots, Lambda sweep (n, density fixed)" rows;
  winners rows;
  rows
