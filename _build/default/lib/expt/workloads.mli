(** Deployment builders for the experiments, each reporting its induced
    graph profile (Δ, D, Λ). *)

open Sinr_geom
open Sinr_phys

type deployment = {
  name : string;
  sinr : Sinr.t;
  profile : Induced.profile;
}

val make : name:string -> Config.t -> Point.t array -> deployment

val connected : ?attempts:int -> Rng.t -> (Rng.t -> deployment) -> deployment
(** Retry a builder with derived seeds until the strong graph is connected
    (the paper's Section 4.6 assumption). Raises [Placement_failed] after
    [attempts] (default 25) tries. *)

val uniform :
  ?config:Config.t -> Rng.t -> n:int -> target_degree:int -> deployment
(** Area scales with n: Δ stays ~[target_degree] while n and D grow. *)

val uniform_density :
  ?config:Config.t -> Rng.t -> n:int -> side:float -> deployment
(** Degree sweep at fixed n. *)

val lambda_sweep :
  Rng.t -> range:float -> n:int -> per_range:int -> deployment
(** Λ sweep: scales the transmission range at ~constant nodes per range. *)

val star :
  ?config:Config.t -> Rng.t -> delta:int -> deployment * Placement.star
(** The Remark 5.3 contention workload. *)

val fig1 : delta:int -> deployment * Placement.two_lines
(** The Theorem 6.1 / Figure 1 construction, R(1-ε) = 10·δ. *)

val two_balls :
  ?config:Config.t -> Rng.t -> delta:int -> deployment * Placement.two_balls
(** The Theorem 8.1 construction (radius R/4, centers 2R apart). *)

val line : ?config:Config.t -> hops:int -> unit -> deployment
(** Diameter sweep with small constant degree. *)
