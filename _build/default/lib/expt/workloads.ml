(* Deployment builders for the experiments.

   Each builder returns the SINR instance plus the induced-graph profile,
   so experiment tables can report the actual Delta, D and Lambda of every
   run alongside the measurements. *)

open Sinr_geom
open Sinr_phys

type deployment = {
  name : string;
  sinr : Sinr.t;
  profile : Induced.profile;
}

let make ~name config points =
  { name;
    sinr = Sinr.create config points;
    profile = Induced.profile config points }

(* The paper assumes G_{1-eps} is connected (Section 4.6); experiment
   deployments retry with derived seeds until that holds. *)
let connected ?(attempts = 25) rng build =
  let rec go k =
    if k = 0 then
      raise
        (Sinr_geom.Placement.Placement_failed
           "Workloads.connected: no connected deployment found")
    else begin
      let d = build (Rng.split rng ~key:(1000 + k)) in
      if Sinr_graph.Components.is_connected d.profile.Induced.strong then d
      else go (k - 1)
    end
  in
  go attempts

(* Uniform deployment with expected strong-graph degree ~ [target_degree]:
   the area scales with n so density (and hence Delta) stays put while n
   and D grow. *)
let uniform ?(config = Config.default) rng ~n ~target_degree =
  let r = Config.strong_range config in
  (* density nodes per unit area so that a disc of radius r holds
     target_degree nodes: rho = target_degree / (pi r^2). *)
  let rho = float_of_int target_degree /. (Float.pi *. r *. r) in
  let side = sqrt (float_of_int n /. rho) in
  let pts =
    Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.
  in
  make ~name:(Fmt.str "uniform(n=%d,deg~%d)" n target_degree) config pts

(* Degree sweep at fixed n: vary the box side directly. *)
let uniform_density ?(config = Config.default) rng ~n ~side =
  let pts = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  make ~name:(Fmt.str "uniform(n=%d,side=%.0f)" n side) config pts

(* Lambda sweep: Lambda = R(1-eps)/d_min, so scale the transmission range
   while keeping roughly [per_range] nodes per transmission-range disc. *)
let lambda_sweep rng ~range ~n ~per_range =
  let config = Config.with_range ~range () in
  let r = Config.strong_range config in
  let rho = float_of_int per_range /. (Float.pi *. r *. r) in
  let side = Float.max (2. *. r) (sqrt (float_of_int n /. rho)) in
  let pts = Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1. in
  make ~name:(Fmt.str "lambda(R=%.0f,n=%d)" range n) config pts

(* Remark 5.3 star: a hub surrounded by delta broadcasting leaves. *)
let star ?(config = Config.default) rng ~delta =
  let radius = Config.approx_range config *. 0.9 in
  let s = Placement.star rng ~delta ~radius in
  let d = make ~name:(Fmt.str "star(delta=%d)" delta) config s.Placement.points in
  (d, s)

(* Theorem 6.1 / Figure 1: two parallel lines with R(1-eps) = 10*delta. *)
let fig1 ~delta =
  let gap0 = 10. *. float_of_int delta in
  let eps = Config.default.Config.eps in
  let config = Config.with_range ~range:(gap0 /. (1. -. eps)) ~eps () in
  let gap = Config.strong_range config *. (1. -. 1e-9) in
  let tl = Placement.two_lines ~delta ~spacing:1. ~gap in
  let d = make ~name:(Fmt.str "fig1(delta=%d)" delta) config tl.Placement.points in
  (d, tl)

(* Theorem 8.1: a 2-node ball and a delta-node ball, radius R/4, centers
   2R apart.  The range scales with sqrt(delta) so that delta unit-spaced
   nodes fit in the R/4 ball (the paper's construction assumes the ball is
   large enough; only ratios matter to the argument). *)
let two_balls ?config rng ~delta =
  let config =
    match config with
    | Some c -> c
    | None ->
      let range =
        Float.max 12. (5. *. sqrt (float_of_int delta))
      in
      Config.with_range ~range ()
  in
  let r = Config.range config in
  let tb =
    Placement.two_balls rng ~delta ~radius:(r /. 4.) ~center_dist:(2. *. r)
  in
  let d =
    make ~name:(Fmt.str "two_balls(delta=%d)" delta) config tb.Placement.points
  in
  (d, tb)

(* Diameter sweep: a line of [hops+1] nodes spaced most of the strong
   range apart, so D ~ hops while Delta stays small. *)
let line ?(config = Config.default) ~hops () =
  let spacing = 0.85 *. Config.approx_range config in
  let pts = Placement.line ~n:(hops + 1) ~spacing in
  make ~name:(Fmt.str "line(hops=%d)" hops) config pts
