(** E7 — Table 1's consensus row (Corollary 5.5), plus crash-fault runs. *)

open Sinr_stats

type row = {
  n : int;
  delta : int;
  diameter : int;
  completed : Summary.t option;
  timeouts : int;
  agreement_ok : bool;
  validity_ok : bool;
  formula : float;
}

val run :
  ?seeds:int list -> ?ns:int list -> ?target_degree:int -> unit -> row list

type crash_row = {
  crashes : int;
  completed : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
}

val run_crashes :
  ?seeds:int list -> ?n:int -> ?crash_counts:int list -> unit ->
  crash_row list
