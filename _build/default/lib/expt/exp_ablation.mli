(** E8 — ablations of Algorithm 9.1's constants (T, Q, label range, MIS
    stages). *)

type row = {
  knob : string;
  value : float;
  success : float;
  p90 : float option;
  epoch_slots : int;
  drops : int;
}

val run : ?seeds:int list -> ?n:int -> ?side:float -> unit -> row list
