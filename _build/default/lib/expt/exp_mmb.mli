(** E6 — Table 1's global MMB row (Theorem 12.7): completion vs k, with
    the additive-in-k shape check. *)

open Sinr_stats

type row = {
  k : int;
  delta : int;
  diameter : int;
  completed : Summary.t option;
  timeouts : int;
  naive : Summary.t option;  (** the [29]-derived sequential pipeline *)
  naive_timeouts : int;
  formula : float;
}

val run :
  ?seeds:int list -> ?n:int -> ?target_degree:int -> ?ks:int list -> unit ->
  row list
