(* Aligned ASCII tables for experiment reports.

   The bench harness prints each reproduced paper table/figure as rows of
   measured values next to the paper's formula predictions; this module owns
   the layout. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns/header length mismatch";
      a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows = [] }

let title t = t.title

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let line row =
    let cells =
      List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "%s\n" t.title);
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)

let to_csv t =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.header :: List.map line (List.rev t.rows)) ^ "\n"
