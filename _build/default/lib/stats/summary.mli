(** Summary statistics of repeated experiment trials. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val of_int_samples : int array -> t

val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [0,1], with linear interpolation. *)

val pp : t Fmt.t
