(* Least-squares fits used to compare measured scaling against the paper's
   formulas.

   A reproduction of a theory paper cannot match absolute constants (the
   substrate is a simulator, not the authors' model constants), so the
   experiment reports fit y ≈ c * f(x) for the paper's predictor f and report
   the residual quality: a good fit with a stable constant means the measured
   curve has the predicted *shape*. *)

(* Ordinary least squares for y = a + b*x.  Returns (a, b, r2). *)
let linear xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then
    invalid_arg "Fit.linear: need >= 2 paired samples";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0. xs in
  let sy = Array.fold_left ( +. ) 0. ys in
  let mean_x = sx /. fn and mean_y = sy /. fn in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mean_x and dy = ys.(i) -. mean_y in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then invalid_arg "Fit.linear: degenerate x values";
  let b = !sxy /. !sxx in
  let a = mean_y -. (b *. mean_x) in
  let r2 = if !syy = 0. then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  (a, b, r2)

(* Best single scale: y ≈ c * pred(x), minimizing squared error.
   Returns (c, r2) where r2 compares residuals to total variation of y. *)
let proportional preds ys =
  let n = Array.length preds in
  if n <> Array.length ys || n < 1 then
    invalid_arg "Fit.proportional: need paired samples";
  let num = ref 0. and den = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. (preds.(i) *. ys.(i));
    den := !den +. (preds.(i) *. preds.(i))
  done;
  if !den = 0. then invalid_arg "Fit.proportional: zero predictor";
  let c = !num /. !den in
  let mean_y = Array.fold_left ( +. ) 0. ys /. float_of_int n in
  let ss_res = ref 0. and ss_tot = ref 0. in
  for i = 0 to n - 1 do
    ss_res := !ss_res +. ((ys.(i) -. (c *. preds.(i))) ** 2.);
    ss_tot := !ss_tot +. ((ys.(i) -. mean_y) ** 2.)
  done;
  let r2 = if !ss_tot = 0. then 1.0 else 1. -. (!ss_res /. !ss_tot) in
  (c, r2)

(* Fit y ≈ c * x^k through log-log regression; returns (c, k, r2).
   Every x and y must be positive. *)
let power_law xs ys =
  let lx = Array.map log xs and ly = Array.map log ys in
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Fit.power_law: nonpositive sample")
    lx;
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Fit.power_law: nonpositive sample")
    ly;
  let a, b, r2 = linear lx ly in
  (exp a, b, r2)

(* Ratio of the last to the first y, normalized by the same ratio of the
   predictor: ~1.0 when the measured curve grows like the prediction. *)
let growth_ratio preds ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Fit.growth_ratio: need >= 2 samples";
  let measured = ys.(n - 1) /. ys.(0) in
  let predicted = preds.(n - 1) /. preds.(0) in
  if predicted = 0. then Float.infinity else measured /. predicted
