(** Least-squares fits for comparing measured scaling curves against the
    paper's asymptotic formulas. *)

val linear : float array -> float array -> float * float * float
(** [(a, b, r²)] of the OLS fit [y = a + b·x]. *)

val proportional : float array -> float array -> float * float
(** [(c, r²)] of the best fit [y = c·pred]: how well the paper's predictor
    explains the measurements up to a single constant. *)

val power_law : float array -> float array -> float * float * float
(** [(c, k, r²)] of the fit [y = c·xᵏ] via log-log regression.
    Requires strictly positive samples. *)

val growth_ratio : float array -> float array -> float
(** Measured end-to-end growth of y divided by predicted growth; ≈ 1.0 when
    the shapes agree. *)
