(* Summary statistics over float samples.

   Experiment reports summarize repeated trials (rounds-to-event measured
   over several seeds) with these descriptors. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let percentile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let of_samples samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Summary.of_samples: no samples";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0. samples in
  let mean = sum /. float_of_int n in
  let var =
    if n < 2 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples
      /. float_of_int (n - 1)
  in
  { count = n;
    mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_of_sorted sorted 0.5;
    p90 = percentile_of_sorted sorted 0.9;
    p99 = percentile_of_sorted sorted 0.99 }

let of_int_samples samples = of_samples (Array.map float_of_int samples)

let percentile samples q =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  percentile_of_sorted sorted q

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3g sd=%.3g min=%.3g med=%.3g p90=%.3g max=%.3g"
    t.count t.mean t.stddev t.min t.median t.p90 t.max
