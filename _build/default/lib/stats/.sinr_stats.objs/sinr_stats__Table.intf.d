lib/stats/table.mli:
