lib/stats/table.ml: Array Buffer Fmt List String
