lib/stats/fit.mli:
