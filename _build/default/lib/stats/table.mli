(** Aligned ASCII tables for experiment reports (one per reproduced paper
    table/figure), with CSV export. *)

type align = Left | Right

type t

val create : title:string -> header:string list -> ?aligns:align list -> unit -> t
(** Alignment defaults to [Right] for every column. *)

val title : t -> string

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count differs from the header. *)

val rows : t -> string list list

val render : t -> string
val print : t -> unit
val to_csv : t -> string
