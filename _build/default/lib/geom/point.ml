(* Points in the Euclidean plane.

   The SINR model of the paper (Section 4.2) places nodes in the plane and
   measures signal decay through Euclidean distance; everything downstream
   (induced graphs, interference, lower-bound constructions) builds on this
   module. *)

type t = { x : float; y : float }

let make x y = { x; y }

let x p = p.x
let y p = p.y

let origin = { x = 0.; y = 0. }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

(* L-infinity distance; Lemma 10.3 partitions the plane into grid cells and
   reasons about rings in this metric. *)
let dist_linf a b = Float.max (Float.abs (a.x -. b.x)) (Float.abs (a.y -. b.y))

let equal a b = Float.equal a.x b.x && Float.equal a.y b.y

let compare a b =
  match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c

let pp ppf p = Fmt.pf ppf "(%.4g, %.4g)" p.x p.y

let to_string p = Fmt.str "%a" pp p

(* Point on the circle of radius [r] around [center] at angle [theta]. *)
let on_circle ~center ~r ~theta =
  { x = center.x +. (r *. cos theta); y = center.y +. (r *. sin theta) }
