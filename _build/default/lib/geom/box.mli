(** Axis-aligned bounding boxes, used to bound deployment regions. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
(** Raises [Invalid_argument] on an inverted box. *)

val square : side:float -> t
(** The box [0, side]². *)

val width : t -> float
val height : t -> float
val contains : t -> Point.t -> bool
val center : t -> Point.t
val diagonal : t -> float

val of_points : ?margin:float -> Point.t array -> t
(** Smallest box containing all points, grown by [margin] on every side.
    Raises [Invalid_argument] on an empty array. *)

val sample : Rng.t -> t -> Point.t
(** Uniform point inside the box. *)

val pp : t Fmt.t
