(** Spatial hash grid for fast range queries over a fixed point set.

    Points are identified by their index in the array passed to {!create};
    all other modules use the same index as the node identifier. *)

type t

val create : cell:float -> Point.t array -> t
(** [create ~cell pts] buckets [pts] into square cells of side [cell].
    A good cell size is the dominant query radius (e.g. the transmission
    range). Raises [Invalid_argument] if [cell <= 0]. *)

val cell_size : t -> float
val point : t -> int -> Point.t
val length : t -> int

val iter_within : t -> center:Point.t -> r:float -> (int -> unit) -> unit
(** Visit every index whose point lies within Euclidean distance [r]
    (inclusive) of [center], each exactly once. *)

val within : t -> center:Point.t -> r:float -> int list
(** Indices within distance [r] of [center]. *)

val nearest_other : t -> int -> (int * float) option
(** Nearest distinct point to point [i], with its distance.
    [None] when the set has a single point. *)
