(* Axis-aligned bounding boxes. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make ~xmin ~ymin ~xmax ~ymax =
  if xmax < xmin || ymax < ymin then invalid_arg "Box.make: inverted box";
  { xmin; ymin; xmax; ymax }

let square ~side =
  if side < 0. then invalid_arg "Box.square: negative side";
  { xmin = 0.; ymin = 0.; xmax = side; ymax = side }

let width b = b.xmax -. b.xmin
let height b = b.ymax -. b.ymin

let contains b (p : Point.t) =
  p.x >= b.xmin && p.x <= b.xmax && p.y >= b.ymin && p.y <= b.ymax

let center b =
  Point.make ((b.xmin +. b.xmax) /. 2.) ((b.ymin +. b.ymax) /. 2.)

let diagonal b = Point.dist (Point.make b.xmin b.ymin) (Point.make b.xmax b.ymax)

(* Smallest box containing all the points, expanded by [margin] on each
   side. *)
let of_points ?(margin = 0.) pts =
  if Array.length pts = 0 then invalid_arg "Box.of_points: no points";
  let xmin = ref Float.infinity and xmax = ref Float.neg_infinity in
  let ymin = ref Float.infinity and ymax = ref Float.neg_infinity in
  Array.iter
    (fun (p : Point.t) ->
      if p.x < !xmin then xmin := p.x;
      if p.x > !xmax then xmax := p.x;
      if p.y < !ymin then ymin := p.y;
      if p.y > !ymax then ymax := p.y)
    pts;
  { xmin = !xmin -. margin;
    ymin = !ymin -. margin;
    xmax = !xmax +. margin;
    ymax = !ymax +. margin }

let sample rng b =
  Point.make
    (b.xmin +. Rng.float rng (width b))
    (b.ymin +. Rng.float rng (height b))

let pp ppf b =
  Fmt.pf ppf "[%.4g,%.4g]x[%.4g,%.4g]" b.xmin b.xmax b.ymin b.ymax
