lib/geom/grid_index.ml: Array Box Float Hashtbl List Option Point
