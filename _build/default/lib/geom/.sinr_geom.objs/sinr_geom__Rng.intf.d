lib/geom/rng.mli:
