lib/geom/box.ml: Array Float Fmt Point Rng
