lib/geom/box.mli: Fmt Point Rng
