lib/geom/placement.ml: Array Box Float Fmt Fun Grid_index Hashtbl List Option Point Rng
