lib/geom/rng.ml: Array Float Hashtbl Random
