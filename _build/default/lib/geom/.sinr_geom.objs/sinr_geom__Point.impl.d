lib/geom/point.ml: Float Fmt
