lib/geom/grid_index.mli: Point
