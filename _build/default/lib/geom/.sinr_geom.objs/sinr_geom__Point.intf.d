lib/geom/point.mli: Fmt
