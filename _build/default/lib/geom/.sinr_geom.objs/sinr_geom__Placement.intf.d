lib/geom/placement.mli: Box Point Rng
