(** Points in the Euclidean plane (the ambient space of the SINR model). *)

type t = { x : float; y : float }

val make : float -> float -> t
val x : t -> float
val y : t -> float
val origin : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val dist : t -> t -> float
(** Euclidean distance. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance (avoids the square root in hot loops). *)

val dist_linf : t -> t -> float
(** Chebyshev (L∞) distance, used by the grid-partition arguments. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

val on_circle : center:t -> r:float -> theta:float -> t
(** Point at polar offset [(r, theta)] from [center]. *)
