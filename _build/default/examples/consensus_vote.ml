(* Consensus vote: agreeing on a value despite crashes.

   A cluster of nodes votes on a binary value using the consensus layer
   (paper Corollary 5.5) over the absMAC; two nodes crash mid-vote.  The
   survivors must agree on a single valid value.

     dune exec examples/consensus_vote.exe *)

open Sinr_geom
open Sinr_phys
open Sinr_proto

let () =
  let rng = Rng.create 31 in
  let n = 14 in
  let points =
    Placement.uniform rng ~n ~box:(Box.square ~side:9.) ~min_dist:1.
  in
  let sinr = Sinr.create Config.default points in
  let initial = Array.init n (fun v -> v mod 3 <> 0) in
  Fmt.pr "votes: %s@."
    (String.concat ""
       (List.map (fun v -> if initial.(v) then "1" else "0") (List.init n Fun.id)));

  let faults = [ (200, 4); (4_000, 9) ] in
  let r =
    Global.cons sinr ~rng:(Rng.split rng ~key:1) ~initial ~faults
      ~rounds_bound:6 ~max_slots:100_000_000
  in
  (match r.Global.completed with
   | Some t -> Fmt.pr "all surviving nodes decided by slot %d@." t
   | None -> Fmt.pr "timed out@.");
  Fmt.pr "crashed: %d, deciders: %d@." r.Global.crashed r.Global.deciders;
  Fmt.pr "agreement: %b, validity: %b@." r.Global.agreement r.Global.validity;
  assert r.Global.agreement;
  assert r.Global.validity
