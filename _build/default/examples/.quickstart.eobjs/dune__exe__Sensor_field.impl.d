examples/sensor_field.ml: Bmmb Box Config Fmt Fun Induced List Mac_driver Placement Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_proto
