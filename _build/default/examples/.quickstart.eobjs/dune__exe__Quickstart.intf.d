examples/quickstart.mli:
