examples/highway_alert.mli:
