examples/consensus_vote.ml: Array Box Config Fmt Fun Global List Placement Rng Sinr Sinr_geom Sinr_phys Sinr_proto String
