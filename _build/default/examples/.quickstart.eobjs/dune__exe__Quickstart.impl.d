examples/quickstart.ml: Absmac_intf Array Box Combined_mac Config Events Fmt Induced Placement Rng Sinr Sinr_geom Sinr_mac Sinr_phys
