examples/sparsify_demo.ml: Approx_progress Array Box Config Engine Events Fmt Induced List Params Placement Point Rng Sinr Sinr_engine Sinr_geom Sinr_mac Sinr_phys String
