examples/consensus_vote.mli:
