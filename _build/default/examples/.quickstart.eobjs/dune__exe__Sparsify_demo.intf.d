examples/sparsify_demo.mli:
