examples/highway_alert.ml: Bmmb Combined_mac Config Events Fmt Fun Induced List Mac_driver Placement Rng Sinr Sinr_geom Sinr_mac Sinr_phys Sinr_proto
