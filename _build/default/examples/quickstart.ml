(* Quickstart: the absMAC API in one page.

   Build a small SINR deployment, bring up the Algorithm 11.1 local
   broadcast layer, broadcast one message and watch the rcv/ack events.

     dune exec examples/quickstart.exe *)

open Sinr_geom
open Sinr_phys
open Sinr_mac

let () =
  (* 1. A deployment: 30 nodes, uniform in a 20x20 box, pairwise distance
        >= 1 (the paper's near-field normalization). *)
  let rng = Rng.create 2024 in
  let points =
    Placement.uniform rng ~n:30 ~box:(Box.square ~side:20.) ~min_dist:1.
  in

  (* 2. The SINR physics: alpha = 3, beta = 1.5, noise 1, range R = 12. *)
  let config = Config.default in
  let sinr = Sinr.create config points in
  let profile = Induced.profile config points in
  Fmt.pr "network: n=%d Delta=%d D=%d Lambda=%.1f@." (Array.length points)
    profile.Induced.strong_degree profile.Induced.strong_diameter
    profile.Induced.lambda;

  (* 3. The local broadcast layer (Algorithm 11.1). *)
  let mac = Combined_mac.create sinr ~rng:(Rng.split rng ~key:1) in
  Combined_mac.set_handlers mac
    { Absmac_intf.on_rcv =
        (fun ~node ~payload ->
          Fmt.pr "  [slot %6d] rcv(%a) at node %d@." (Combined_mac.now mac)
            Events.pp_payload payload node);
      on_ack =
        (fun ~node ~payload ->
          Fmt.pr "  [slot %6d] ack(%a) at node %d@." (Combined_mac.now mac)
            Events.pp_payload payload node) };

  (* 4. Broadcast from node 0 and run until the acknowledgment. *)
  let _payload = Combined_mac.bcast mac ~node:0 ~data:7 in
  Fmt.pr "node 0 broadcasts (f_ack bound: %d slots)...@."
    (Combined_mac.bounds mac).Absmac_intf.f_ack;
  while Combined_mac.busy mac ~node:0 do
    Combined_mac.step mac
  done;
  Fmt.pr "done in %d slots.@." (Combined_mac.now mac)
