(* Sparsification demo: watch Algorithm 9.1 thin the sender set.

   An ASCII rendering of one epoch: each phase starts from the surviving
   sender set S_phi, estimates the reliability graph over the air, runs the
   non-unique-label MIS and keeps only the dominators.  The intuition of
   paper Section 9.1 — "the minimum distance between remaining senders
   doubles every phase" — is visible directly in the pictures.

     dune exec examples/sparsify_demo.exe *)

open Sinr_geom
open Sinr_phys
open Sinr_engine
open Sinr_mac

let side = 26.

let render points members =
  let cols = 52 and rows = 26 in
  let grid = Array.make_matrix rows cols ' ' in
  Array.iteri
    (fun v (p : Point.t) ->
      let cx =
        min (cols - 1) (max 0 (int_of_float (p.Point.x /. side *. float_of_int cols)))
      in
      let cy =
        min (rows - 1) (max 0 (int_of_float (p.Point.y /. side *. float_of_int rows)))
      in
      let mark = if members.(v) then '#' else '.' in
      (* A member mark always wins the cell. *)
      if grid.(cy).(cx) <> '#' then grid.(cy).(cx) <- mark)
    points;
  Array.iter (fun row -> print_endline (String.init cols (Array.get row))) grid

let () =
  let rng = Rng.create 2718 in
  let n = 70 in
  let points =
    Placement.uniform rng ~n ~box:(Box.square ~side) ~min_dist:1.
  in
  let config = Config.default in
  let sinr = Sinr.create config points in
  let lambda = Induced.lambda config points in
  let machine =
    Approx_progress.create Params.default_approg config ~lambda ~n
      ~rng:(Rng.split rng ~key:1)
  in
  let engine = Engine.create sinr in
  (* Everyone has an ongoing broadcast: the densest S_1 possible. *)
  for v = 0 to n - 1 do
    Engine.wake engine v;
    Approx_progress.start machine ~node:v
      { Events.origin = v; seq = 0; data = v }
  done;
  let sched = Approx_progress.schedule machine in
  Fmt.pr "n=%d  Lambda=%.1f  Phi=%d phases, epoch=%d slots@." n lambda
    sched.Params.phi sched.Params.epoch_slots;
  let members () = Array.init n (fun v -> Approx_progress.member machine ~node:v) in
  let count ms = Array.fold_left (fun a b -> if b then a + 1 else a) 0 ms in
  let shown = ref (-1) in
  (* Run one epoch; snapshot at each phase boundary.  The machine joins
     everyone at the *second* epoch (conditional join at boundaries), so run
     through epoch 1 silently first. *)
  while Approx_progress.epoch_index machine < 1 do
    ignore (Approx_progress.end_slot machine)
  done;
  let start_epoch = Approx_progress.epoch_index machine in
  while Approx_progress.epoch_index machine = start_epoch do
    let phase = Approx_progress.current_phase machine in
    if phase <> !shown then begin
      shown := phase;
      let ms = members () in
      Fmt.pr "@.--- phase %d: |S_%d| = %d senders ('#'; '.' = silent) ---@."
        (phase + 1) (phase + 1) (count ms);
      render points ms
    end;
    let ds =
      Engine.step engine ~decide:(fun v ->
          match Approx_progress.decide machine ~node:v with
          | Some w -> Engine.Transmit w
          | None -> Engine.Listen)
    in
    List.iter
      (fun d ->
        Approx_progress.on_receive machine ~receiver:d.Engine.receiver
          ~sender:d.Engine.sender d.Engine.message)
      ds;
    ignore (Approx_progress.end_slot machine)
  done;
  Fmt.pr "@.epoch complete: every phase kept an independent set of the \
          estimated reliability graph, thinning the competition until the \
          data slots could get through.@."
