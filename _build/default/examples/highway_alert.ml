(* Highway alert: single-message broadcast along a line, with an abort.

   An accident sensor at one end of a highway floods an alert to every
   vehicle (global SMB, paper Theorem 12.7).  The deployment is a line, so
   the diameter dominates the runtime.  We also demonstrate the enhanced
   MAC's abort: a second, lower-priority broadcast is aborted when the
   alert arrives.

     dune exec examples/highway_alert.exe *)

open Sinr_geom
open Sinr_phys
open Sinr_mac
open Sinr_proto

let () =
  let hops = 12 in
  let config = Config.default in
  let spacing = 0.85 *. Config.approx_range config in
  let points = Placement.line ~n:(hops + 1) ~spacing in
  let sinr = Sinr.create config points in
  let profile = Induced.profile config points in
  Fmt.pr "highway: %d vehicles, D=%d@." (hops + 1)
    profile.Induced.strong_diameter;

  let rng = Rng.create 99 in
  let mac = Combined_mac.create sinr ~rng in
  let driver = Mac_driver.of_combined mac in
  let proto = Bmmb.create driver in

  (* Vehicle 5 is chatting (a low-priority beacon) when the alert starts. *)
  let beacon = Combined_mac.bcast mac ~node:5 ~data:555 in
  Fmt.pr "vehicle 5 starts a beacon broadcast %a@." Events.pp_payload beacon;

  (* The accident alert enters at vehicle 0. *)
  Bmmb.arrive proto ~node:0 ~msg:911;

  (* Drive the protocol; when the alert reaches vehicle 5, abort its
     beacon (the enhanced layer's abort interface). *)
  let aborted = ref false in
  let steps = ref 0 in
  let all = List.init (hops + 1) Fun.id in
  let done_ () = List.for_all (fun v -> Bmmb.delivered proto ~node:v ~msg:911) all in
  while (not (done_ ())) && !steps < 20_000_000 do
    if (not !aborted) && Bmmb.delivered proto ~node:5 ~msg:911 then begin
      Combined_mac.abort mac ~node:5;
      aborted := true;
      Fmt.pr "  [slot %6d] vehicle 5 aborts its beacon for the alert@."
        (Combined_mac.now mac)
    end;
    Bmmb.step proto;
    incr steps
  done;
  if done_ () then begin
    Fmt.pr "alert at every vehicle after %d slots@." (Combined_mac.now mac);
    List.iter
      (fun v ->
        match Bmmb.delivery_slot proto ~node:v ~msg:911 with
        | Some t -> Fmt.pr "  vehicle %2d informed at slot %6d@." v t
        | None -> ())
      all
  end
  else Fmt.pr "timed out@."
