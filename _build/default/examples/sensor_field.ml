(* Sensor field: multi-message broadcast of sensor readings.

   The motivating workload for global MMB (paper Sections 2 and 12): a
   field of sensors, a few of which detect an event and must disseminate
   their readings to every node.  We run the BMMB protocol of [37] over
   the Algorithm 11.1 absMAC and report per-message dissemination times.

     dune exec examples/sensor_field.exe *)

open Sinr_geom
open Sinr_phys
open Sinr_proto

let () =
  let rng = Rng.create 7 in
  let n = 40 in
  let points =
    Placement.uniform rng ~n ~box:(Box.square ~side:26.) ~min_dist:1.
  in
  let sinr = Sinr.create Config.default points in
  let profile = Induced.profile Config.default points in
  Fmt.pr "sensor field: n=%d Delta=%d D=%d@." n
    profile.Induced.strong_degree profile.Induced.strong_diameter;

  let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.split rng ~key:1) in
  let proto = Bmmb.create (Mac_driver.of_combined mac) in

  (* Three sensors fire; readings are identified by message ids. *)
  let detections = [ (3, 301); (17, 317); (33, 333) ] in
  List.iter
    (fun (node, msg) ->
      Fmt.pr "sensor %d raises reading #%d@." node msg;
      Bmmb.arrive proto ~node ~msg)
    detections;

  let msgs = List.map snd detections in
  match
    Bmmb.run_until_complete proto ~nodes:(List.init n Fun.id) ~msgs
      ~max_steps:20_000_000
  with
  | None -> Fmt.pr "dissemination timed out@."
  | Some t ->
    Fmt.pr "all %d readings at all %d nodes after %d slots@."
      (List.length msgs) n t;
    List.iter
      (fun msg ->
        let slots =
          List.filter_map
            (fun node -> Bmmb.delivery_slot proto ~node ~msg)
            (List.init n Fun.id)
        in
        let last = List.fold_left max 0 slots in
        Fmt.pr "  reading #%d fully disseminated by slot %d@." msg last)
      msgs;
    (* Exactly-once delivery is a BMMB invariant. *)
    assert (List.length (Bmmb.deliveries proto) = n * List.length msgs)
