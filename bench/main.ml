(* Benchmark harness: regenerates every table and figure of the paper's
   contribution as an empirical scaling experiment (see DESIGN.md's
   per-experiment index), plus Bechamel micro-benchmarks of the simulation
   kernels.

   Usage:
     main.exe                      run everything
     main.exe <id> [<id> ...]      run selected experiments
   ids: table1-ack fig1-progress-lb table1-approg thm8-decay table2-smb
        table1-mmb table1-cons ablation mac-compare capacity micro *)

open Sinr_geom
open Sinr_phys
open Sinr_expt

let table1_ack () = ignore (Exp_ack.run ())

let fig1_lb () = ignore (Exp_progress_lb.run ())

let table1_approg () =
  ignore (Exp_approg.run_density ());
  ignore (Exp_approg.run_eps ())

let thm8_decay () = ignore (Exp_decay_lb.run ())

let table2_smb () =
  ignore (Exp_smb.run_diameter ());
  ignore (Exp_smb.run_lambda ());
  ignore (Exp_smb.run_size ())

let table1_mmb () = ignore (Exp_mmb.run ())

let table1_cons () =
  ignore (Exp_cons.run ());
  ignore (Exp_cons.run_crashes ())

let ablation () = ignore (Exp_ablation.run ())

let mac_compare () = ignore (Exp_mac_compare.run ())

let capacity () = ignore (Exp_capacity.run ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot kernels                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  Report.section "micro: Bechamel kernel benchmarks";
  let open Bechamel in
  let open Toolkit in
  (* Kernel 1: one SINR slot resolution, 200 nodes / 50 senders. *)
  let resolve_kernel =
    let rng = Rng.create 1 in
    let pts =
      Placement.uniform rng ~n:200 ~box:(Sinr_geom.Box.square ~side:60.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let senders = List.init 50 (fun i -> i * 4) in
    Test.make ~name:"sinr_resolve_200n_50tx"
      (Staged.stage (fun () -> ignore (Sinr.resolve sinr ~senders)))
  in
  (* Kernel 2: strong-graph construction for 300 nodes. *)
  let induced_kernel =
    let rng = Rng.create 2 in
    let pts =
      Placement.uniform rng ~n:300 ~box:(Sinr_geom.Box.square ~side:80.)
        ~min_dist:1.
    in
    Test.make ~name:"induced_strong_300n"
      (Staged.stage (fun () -> ignore (Induced.strong Config.default pts)))
  in
  (* Kernel 3: a full modified-MIS run on a 100-node disc graph. *)
  let mis_kernel =
    let rng = Rng.create 3 in
    let pts =
      Placement.uniform rng ~n:100 ~box:(Sinr_geom.Box.square ~side:35.)
        ~min_dist:1.
    in
    let g =
      Sinr_graph.Graph.of_predicate ~n:100 (fun u v ->
          Point.dist pts.(u) pts.(v) <= 4.)
    in
    let participants = List.init 100 Fun.id in
    Test.make ~name:"sw_mis_100n"
      (Staged.stage (fun () ->
           let labels =
             Sinr_mis.Labels.draw (Rng.create 9) ~n:100 ~participants ~bits:12
           in
           let mis =
             Sinr_mis.Sw_mis.create ~n:100 ~participants ~labels
               ~label_bits:12 ~stages:2
           in
           Sinr_mis.Sw_mis.run_congest g mis))
  in
  (* Kernel 4: one combined-MAC slot on a 60-node network with 8 ongoing
     broadcasts. *)
  let mac_kernel =
    let rng = Rng.create 4 in
    let pts =
      Placement.uniform rng ~n:60 ~box:(Sinr_geom.Box.square ~side:30.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 5) in
    List.iter
      (fun v -> ignore (Sinr_mac.Combined_mac.bcast mac ~node:v ~data:v))
      [ 0; 7; 14; 21; 28; 35; 42; 49 ];
    Test.make ~name:"combined_mac_slot_60n"
      (Staged.stage (fun () -> Sinr_mac.Combined_mac.step mac))
  in
  (* One kernel per paper table/figure: the inner loop each experiment
     spends its time in. *)
  let fig1_kernel =
    let _, tl = Sinr_expt.Workloads.fig1 ~delta:16 in
    let sinr =
      Sinr.create
        (Config.with_range ~range:(160. /. 0.9) ())
        tl.Placement.points
    in
    Test.make ~name:"fig1_resolve_1tx"
      (Staged.stage (fun () ->
           ignore (Sinr.resolve sinr ~senders:[ tl.Placement.senders.(0) ])))
  in
  let ack_kernel =
    let rng = Rng.create 6 in
    let d, st = Sinr_expt.Workloads.star rng ~delta:24 in
    let hm =
      Sinr_mac.Hm_ack.create Sinr_mac.Params.default_ack
        ~lambda:d.Sinr_expt.Workloads.profile.Induced.lambda
        ~n:(Sinr.n d.Sinr_expt.Workloads.sinr)
        ~rng:(Rng.create 7)
    in
    Array.iter
      (fun v ->
        Sinr_mac.Hm_ack.start hm ~node:v
          { Sinr_mac.Events.origin = v; seq = 0; data = 0 })
      st.Placement.leaves;
    Test.make ~name:"table1_ack_hm_slot_24tx"
      (Staged.stage (fun () ->
           Array.iter
             (fun v -> ignore (Sinr_mac.Hm_ack.decide hm ~node:v))
             st.Placement.leaves))
  in
  let approg_kernel =
    let rng = Rng.create 8 in
    let pts =
      Placement.uniform rng ~n:80 ~box:(Sinr_geom.Box.square ~side:30.)
        ~min_dist:1.
    in
    let lambda = Induced.lambda Config.default pts in
    let m =
      Sinr_mac.Approx_progress.create Sinr_mac.Params.default_approg
        Config.default ~lambda ~n:80 ~rng:(Rng.create 9)
    in
    for v = 0 to 39 do
      Sinr_mac.Approx_progress.start m ~node:(v * 2)
        { Sinr_mac.Events.origin = v * 2; seq = 0; data = 0 }
    done;
    Test.make ~name:"table1_approg_slot_80n"
      (Staged.stage (fun () ->
           for v = 0 to 79 do
             ignore (Sinr_mac.Approx_progress.decide m ~node:v)
           done;
           ignore (Sinr_mac.Approx_progress.end_slot m)))
  in
  let decay_kernel =
    let rng = Rng.create 10 in
    let d, tb = Sinr_expt.Workloads.two_balls rng ~delta:64 in
    let n = Sinr.n d.Sinr_expt.Workloads.sinr in
    let decay = Sinr_mac.Decay.create ~n_tilde:256 ~n ~rng:(Rng.create 11) in
    Array.iter
      (fun v ->
        Sinr_mac.Decay.start decay ~node:v ~slot:0
          { Sinr_mac.Events.origin = v; seq = 0; data = 0 })
      tb.Placement.ball2;
    let slot = ref 0 in
    Test.make ~name:"thm8_decay_slot_64tx"
      (Staged.stage (fun () ->
           incr slot;
           for v = 0 to n - 1 do
             ignore (Sinr_mac.Decay.decide decay ~node:v ~slot:!slot)
           done))
  in
  let smb_kernel =
    let rng = Rng.create 12 in
    let pts =
      Placement.uniform rng ~n:40 ~box:(Sinr_geom.Box.square ~side:26.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 13) in
    let proto = Sinr_proto.Bmmb.create (Sinr_proto.Mac_driver.of_combined mac) in
    Sinr_proto.Bmmb.arrive proto ~node:0 ~msg:1;
    Test.make ~name:"table2_smb_bmmb_step_40n"
      (Staged.stage (fun () -> Sinr_proto.Bmmb.step proto))
  in
  let cons_kernel =
    let rng = Rng.create 14 in
    let pts =
      Placement.uniform rng ~n:30 ~box:(Sinr_geom.Box.square ~side:22.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 15) in
    let proto =
      Sinr_proto.Consensus.create
        (Sinr_proto.Mac_driver.of_combined mac)
        ~initial:(Array.init 30 (fun v -> v mod 2 = 0))
        ~rounds_bound:8
    in
    Test.make ~name:"table1_cons_step_30n"
      (Staged.stage (fun () -> Sinr_proto.Consensus.step proto))
  in
  let tests =
    Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
      [ resolve_kernel; induced_kernel; mis_kernel; mac_kernel; fig1_kernel;
        ack_kernel; approg_kernel; decay_kernel; smb_kernel; cons_kernel ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
   | None -> print_endline "no results"
   | Some tbl ->
     let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
     List.iter
       (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Fmt.pr "%-34s %12.0f ns/run@." name est
         | Some _ | None -> Fmt.pr "%-34s (no estimate)@." name)
       (List.sort compare rows))

let experiments =
  [ ("table1-ack", table1_ack);
    ("fig1-progress-lb", fig1_lb);
    ("table1-approg", table1_approg);
    ("thm8-decay", thm8_decay);
    ("table2-smb", table2_smb);
    ("table1-mmb", table1_mmb);
    ("table1-cons", table1_cons);
    ("ablation", ablation);
    ("mac-compare", mac_compare);
    ("capacity", capacity);
    ("micro", micro) ]

(* Machine-readable companion to the printed tables: the telemetry snapshot
   of everything the experiments did, plus a wall-time gauge per experiment.
   The [micro] kernels run with telemetry disabled so the Bechamel numbers
   measure the uninstrumented hot paths (the disabled-overhead guarantee the
   registry makes is itself checked by the sinr_resolve kernel). *)
let obs_path = "BENCH_obs.json"

let record_seconds id dt =
  Sinr_obs.Metrics.with_enabled (fun () ->
      Sinr_obs.Metrics.set
        (Sinr_obs.Metrics.gauge ("bench." ^ id ^ ".seconds"))
        dt)

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: [] | [] -> List.map fst experiments
    | _ :: args -> args
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f ->
        let t = Unix.gettimeofday () in
        if id = "micro" then f () else Sinr_obs.Metrics.with_enabled f;
        let dt = Unix.gettimeofday () -. t in
        record_seconds id dt;
        Fmt.pr "@.[%s done in %.1fs]@." id dt
      | None ->
        Fmt.epr "unknown experiment %S; known: %s@." id
          (String.concat " " (List.map fst experiments));
        exit 2)
    requested;
  let snap = Sinr_obs.Metrics.snapshot () in
  Sinr_obs.Sink.write_snapshot ~label:"bench" obs_path snap;
  Fmt.pr "@.[obs snapshot written: %s]@." obs_path;
  Fmt.pr "total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
