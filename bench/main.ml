(* Benchmark harness: regenerates every table and figure of the paper's
   contribution as an empirical scaling experiment (see DESIGN.md's
   per-experiment index), plus Bechamel micro-benchmarks of the simulation
   kernels.

   Usage:
     main.exe [--jobs N]           run everything
     main.exe [--jobs N] <id> ...  run selected experiments
     main.exe diff --baseline PATH [--current PATH] [--tolerance T]
              [--ignore GLOB]...   regression gate: compare a fresh
              BENCH_*.json against a committed baseline; exit 1 on any
              regressed or missing metric (see lib/obs/bench_diff.mli)
   ids: table1-ack fig1-progress-lb table1-approg thm8-decay table2-smb
        table1-mmb table1-cons ablation mac-compare capacity chaos micro
        par-bench phys scale trace-overhead metrics-overhead

   --jobs N sizes the Sinr_par domain pool the experiments' sweeps run on
   (default: SINR_JOBS, else Domain.recommended_domain_count (); 1 forces
   the sequential path).  A failing experiment no longer loses the run:
   its error is reported, its status gauge records the failure, and the
   remaining experiments plus the BENCH_obs.json snapshot still happen. *)

open Sinr_geom
open Sinr_phys
open Sinr_expt
open Sinr_par

let table1_ack () = ignore (Exp_ack.run ())

let fig1_lb () = ignore (Exp_progress_lb.run ())

let table1_approg () =
  ignore (Exp_approg.run_density ());
  ignore (Exp_approg.run_eps ())

let thm8_decay () = ignore (Exp_decay_lb.run ())

let table2_smb () =
  ignore (Exp_smb.run_diameter ());
  ignore (Exp_smb.run_lambda ());
  ignore (Exp_smb.run_size ())

let table1_mmb () = ignore (Exp_mmb.run ())

let table1_cons () =
  ignore (Exp_cons.run ());
  ignore (Exp_cons.run_crashes ())

let ablation () = ignore (Exp_ablation.run ())

let mac_compare () = ignore (Exp_mac_compare.run ())

let capacity () = ignore (Exp_capacity.run ())

let chaos () = ignore (Exp_chaos.run ~out:"BENCH_chaos.json" ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot kernels                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  Report.section "micro: Bechamel kernel benchmarks";
  let open Bechamel in
  let open Toolkit in
  (* Kernel 1: one SINR slot resolution, 200 nodes / 50 senders. *)
  let resolve_kernel =
    let rng = Rng.create 1 in
    let pts =
      Placement.uniform rng ~n:200 ~box:(Sinr_geom.Box.square ~side:60.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let senders = List.init 50 (fun i -> i * 4) in
    Test.make ~name:"sinr_resolve_200n_50tx"
      (Staged.stage (fun () -> ignore (Sinr.resolve sinr ~senders)))
  in
  (* Kernel 2: strong-graph construction for 300 nodes. *)
  let induced_kernel =
    let rng = Rng.create 2 in
    let pts =
      Placement.uniform rng ~n:300 ~box:(Sinr_geom.Box.square ~side:80.)
        ~min_dist:1.
    in
    Test.make ~name:"induced_strong_300n"
      (Staged.stage (fun () -> ignore (Induced.strong Config.default pts)))
  in
  (* Kernel 3: a full modified-MIS run on a 100-node disc graph. *)
  let mis_kernel =
    let rng = Rng.create 3 in
    let pts =
      Placement.uniform rng ~n:100 ~box:(Sinr_geom.Box.square ~side:35.)
        ~min_dist:1.
    in
    let g =
      Sinr_graph.Graph.of_predicate ~n:100 (fun u v ->
          Point.dist pts.(u) pts.(v) <= 4.)
    in
    let participants = List.init 100 Fun.id in
    Test.make ~name:"sw_mis_100n"
      (Staged.stage (fun () ->
           let labels =
             Sinr_mis.Labels.draw (Rng.create 9) ~n:100 ~participants ~bits:12
           in
           let mis =
             Sinr_mis.Sw_mis.create ~n:100 ~participants ~labels
               ~label_bits:12 ~stages:2
           in
           Sinr_mis.Sw_mis.run_congest g mis))
  in
  (* Kernel 4: one combined-MAC slot on a 60-node network with 8 ongoing
     broadcasts. *)
  let mac_kernel =
    let rng = Rng.create 4 in
    let pts =
      Placement.uniform rng ~n:60 ~box:(Sinr_geom.Box.square ~side:30.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 5) in
    List.iter
      (fun v -> ignore (Sinr_mac.Combined_mac.bcast mac ~node:v ~data:v))
      [ 0; 7; 14; 21; 28; 35; 42; 49 ];
    Test.make ~name:"combined_mac_slot_60n"
      (Staged.stage (fun () -> Sinr_mac.Combined_mac.step mac))
  in
  (* One kernel per paper table/figure: the inner loop each experiment
     spends its time in. *)
  let fig1_kernel =
    let _, tl = Sinr_expt.Workloads.fig1 ~delta:16 in
    let sinr =
      Sinr.create
        (Config.with_range ~range:(160. /. 0.9) ())
        tl.Placement.points
    in
    Test.make ~name:"fig1_resolve_1tx"
      (Staged.stage (fun () ->
           ignore (Sinr.resolve sinr ~senders:[ tl.Placement.senders.(0) ])))
  in
  let ack_kernel =
    let rng = Rng.create 6 in
    let d, st = Sinr_expt.Workloads.star rng ~delta:24 in
    let hm =
      Sinr_mac.Hm_ack.create Sinr_mac.Params.default_ack
        ~lambda:d.Sinr_expt.Workloads.profile.Induced.lambda
        ~n:(Sinr.n d.Sinr_expt.Workloads.sinr)
        ~rng:(Rng.create 7)
    in
    Array.iter
      (fun v ->
        Sinr_mac.Hm_ack.start hm ~node:v
          { Sinr_mac.Events.origin = v; seq = 0; data = 0 })
      st.Placement.leaves;
    Test.make ~name:"table1_ack_hm_slot_24tx"
      (Staged.stage (fun () ->
           Array.iter
             (fun v -> ignore (Sinr_mac.Hm_ack.decide hm ~node:v))
             st.Placement.leaves))
  in
  let approg_kernel =
    let rng = Rng.create 8 in
    let pts =
      Placement.uniform rng ~n:80 ~box:(Sinr_geom.Box.square ~side:30.)
        ~min_dist:1.
    in
    let lambda = Induced.lambda Config.default pts in
    let m =
      Sinr_mac.Approx_progress.create Sinr_mac.Params.default_approg
        Config.default ~lambda ~n:80 ~rng:(Rng.create 9)
    in
    for v = 0 to 39 do
      Sinr_mac.Approx_progress.start m ~node:(v * 2)
        { Sinr_mac.Events.origin = v * 2; seq = 0; data = 0 }
    done;
    Test.make ~name:"table1_approg_slot_80n"
      (Staged.stage (fun () ->
           for v = 0 to 79 do
             ignore (Sinr_mac.Approx_progress.decide m ~node:v)
           done;
           ignore (Sinr_mac.Approx_progress.end_slot m)))
  in
  let decay_kernel =
    let rng = Rng.create 10 in
    let d, tb = Sinr_expt.Workloads.two_balls rng ~delta:64 in
    let n = Sinr.n d.Sinr_expt.Workloads.sinr in
    let decay = Sinr_mac.Decay.create ~n_tilde:256 ~n ~rng:(Rng.create 11) in
    Array.iter
      (fun v ->
        Sinr_mac.Decay.start decay ~node:v ~slot:0
          { Sinr_mac.Events.origin = v; seq = 0; data = 0 })
      tb.Placement.ball2;
    let slot = ref 0 in
    Test.make ~name:"thm8_decay_slot_64tx"
      (Staged.stage (fun () ->
           incr slot;
           for v = 0 to n - 1 do
             ignore (Sinr_mac.Decay.decide decay ~node:v ~slot:!slot)
           done))
  in
  let smb_kernel =
    let rng = Rng.create 12 in
    let pts =
      Placement.uniform rng ~n:40 ~box:(Sinr_geom.Box.square ~side:26.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 13) in
    let proto = Sinr_proto.Bmmb.create (Sinr_proto.Mac_driver.of_combined mac) in
    Sinr_proto.Bmmb.arrive proto ~node:0 ~msg:1;
    Test.make ~name:"table2_smb_bmmb_step_40n"
      (Staged.stage (fun () -> Sinr_proto.Bmmb.step proto))
  in
  let cons_kernel =
    let rng = Rng.create 14 in
    let pts =
      Placement.uniform rng ~n:30 ~box:(Sinr_geom.Box.square ~side:22.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let mac = Sinr_mac.Combined_mac.create sinr ~rng:(Rng.create 15) in
    let proto =
      Sinr_proto.Consensus.create
        (Sinr_proto.Mac_driver.of_combined mac)
        ~initial:(Array.init 30 (fun v -> v mod 2 = 0))
        ~rounds_bound:8
    in
    Test.make ~name:"table1_cons_step_30n"
      (Staged.stage (fun () -> Sinr_proto.Consensus.step proto))
  in
  let tests =
    Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
      [ resolve_kernel; induced_kernel; mis_kernel; mac_kernel; fig1_kernel;
        ack_kernel; approg_kernel; decay_kernel; smb_kernel; cons_kernel ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
   | None -> print_endline "no results"
   | Some tbl ->
     let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
     List.iter
       (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Fmt.pr "%-34s %12.0f ns/run@." name est
         | Some _ | None -> Fmt.pr "%-34s (no estimate)@." name)
       (List.sort compare rows))

(* ------------------------------------------------------------------ *)
(* par-bench: sequential-vs-parallel wall clocks -> BENCH_parallel.json *)
(* ------------------------------------------------------------------ *)

(* Two Monte-Carlo-heavy workloads, each timed at jobs=1 and at the
   parallel width (>= 4 per the perf-trajectory contract; honest numbers
   either way — on a single-core host the speedup gauge simply reports
   what the hardware allows).  Telemetry stays off so the clocks measure
   the kernels, and the snapshot is assembled by hand so the file carries
   exactly the par.bench.* gauges. *)
let par_bench_path = "BENCH_parallel.json"

let reliability_workload ~jobs () =
  let rng = Rng.create 41 in
  let pts =
    Placement.uniform rng ~n:260 ~box:(Sinr_geom.Box.square ~side:70.)
      ~min_dist:1.
  in
  let sinr = Sinr.create Config.default pts in
  let est =
    Reliability.estimate ~trials:3_000 ~jobs sinr (Rng.split rng ~key:1)
      ~set:(List.init 260 Fun.id) ~p:0.25 ~mu:0.01
  in
  ignore (Reliability.graph est)

let ack_sweep_workload ~jobs () =
  let prev = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs prev) @@ fun () ->
  ignore
    (Exp_ack.run ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
       ~deltas:[ 16; 32; 48; 64 ] ())

let par_bench () =
  Report.section "par-bench: sequential vs parallel wall clock";
  let par_jobs = max 4 (Pool.default_jobs ()) in
  let cores = Domain.recommended_domain_count () in
  (* Domain.recommended_domain_count is the honest parallel width of the
     host.  On a 1-CPU host the jobs=N clocks only measure timesharing
     overhead, so the speedup curve is noise: say so and record the
     jobs=1 clocks only, rather than a misleading "speedup". *)
  let single_cpu = cores <= 1 in
  if single_cpu then
    Fmt.pr
      "[par-bench: 1-CPU host (Domain.recommended_domain_count = %d) — \
       speedup curve not meaningful; recording jobs=1 clocks only]@."
      cores
  else if par_jobs > cores then
    Fmt.epr
      "[par-bench: %d jobs exceed the %d recommended cores — parallel \
       clocks will understate the speedup]@."
      par_jobs cores;
  let time f =
    let t = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t
  in
  let gauges =
    ref
      [ ("par.bench.jobs", float_of_int par_jobs);
        ("par.bench.cores", float_of_int cores);
        ( "par.bench.recommended_domain_count",
          float_of_int (Domain.recommended_domain_count ()) ) ]
  in
  List.iter
    (fun (id, workload) ->
      let seq = time (workload ~jobs:1) in
      gauges := (Fmt.str "par.bench.%s.jobs1.seconds" id, seq) :: !gauges;
      if single_cpu then
        Fmt.pr "%-24s jobs=1 %.2fs   (speedup curve skipped on 1 CPU)@." id
          seq
      else begin
        let par = time (workload ~jobs:par_jobs) in
        let speedup = if par > 0. then seq /. par else 0. in
        Fmt.pr "%-24s jobs=1 %.2fs   jobs=%d %.2fs   speedup %.2fx@." id seq
          par_jobs par speedup;
        gauges :=
          (Fmt.str "par.bench.%s.speedup" id, speedup)
          :: (Fmt.str "par.bench.%s.jobs%d.seconds" id par_jobs, par)
          :: !gauges
      end)
    [ ("reliability", reliability_workload); ("ack-sweep", ack_sweep_workload) ];
  let snap =
    List.sort compare !gauges
    |> List.map (fun (name, v) -> (name, Sinr_obs.Metrics.Gauge_v v))
  in
  Sinr_obs.Sink.write_snapshot ~label:"par-bench" par_bench_path snap;
  Fmt.pr "[parallel bench written: %s]@." par_bench_path

(* ------------------------------------------------------------------ *)
(* phys: fast-path vs seed-kernel resolve throughput -> BENCH_phys.json *)
(* ------------------------------------------------------------------ *)

(* The acceptance gauge of the physics fast path (DESIGN.md "Physics fast
   path"): slot-resolution throughput of the cached kernel against the
   seed kernel (Sinr.resolve_reference) at n in {64, 256, 1024} with
   |S| = n/4 senders, plus the Reliability.estimate wall clock on both
   kernels and a far-field sample.  Telemetry stays off (the experiment
   is in [uninstrumented]) so the clocks measure the kernels. *)
let phys_bench_path = "BENCH_phys.json"

(* Adaptive repetition: run [f] until >= 0.3 s of wall clock, return
   calls per second. *)
let calls_per_second f =
  f ();
  (* warm-up: fills cache rows, faults code in *)
  let rec go reps =
    let t = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t in
    if dt >= 0.3 then float_of_int reps /. dt else go (reps * 4)
  in
  go 1

let phys_deployment ~n =
  let rng = Rng.create 51 in
  (* Constant density: ~20 in-range neighbours per node at R = 12. *)
  let side = 4.4 *. sqrt (float_of_int n) in
  let pts =
    Placement.uniform rng ~n ~box:(Sinr_geom.Box.square ~side) ~min_dist:1.
  in
  (Sinr.create Config.default pts, List.init (n / 4) (fun i -> i * 4))

let phys_bench () =
  Report.section "phys: cached kernel vs seed kernel";
  let gauges = ref [] in
  let record name v = gauges := (name, v) :: !gauges in
  List.iter
    (fun n ->
      let sinr, senders = phys_deployment ~n in
      let cached =
        calls_per_second (fun () -> ignore (Sinr.resolve sinr ~senders))
      in
      let reference =
        calls_per_second (fun () ->
            ignore (Sinr.resolve_reference sinr ~senders))
      in
      let speedup = cached /. reference in
      Fmt.pr
        "resolve n=%-5d |S|=%-4d cached %10.0f slots/s   seed %10.0f \
         slots/s   speedup %5.2fx@."
        n (List.length senders) cached reference speedup;
      record (Fmt.str "phys.bench.n%d.cached.slots_per_s" n) cached;
      record (Fmt.str "phys.bench.n%d.reference.slots_per_s" n) reference;
      record (Fmt.str "phys.bench.n%d.speedup" n) speedup)
    [ 64; 256; 1024 ];
  (* Reliability.estimate wall clock: the production path (cached kernel,
     scratch sender arrays) against the same trial loop on the seed
     kernel. *)
  let rel_n = 256 and trials = 1_500 and p = 0.25 in
  let sinr, _ = phys_deployment ~n:rel_n in
  let set = List.init rel_n Fun.id in
  let rel_rng = Rng.create 52 in
  let time f =
    let t = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t
  in
  let cached_s =
    time (fun () ->
        ignore
          (Reliability.estimate ~trials ~jobs:1 sinr rel_rng ~set ~p ~mu:0.01))
  in
  let reference_s =
    time (fun () ->
        (* The seed's trial loop verbatim: list senders, reference kernel. *)
        let members = Array.of_list set in
        for t = 0 to trials - 1 do
          let trng = Rng.split rel_rng ~key:t in
          let senders =
            Array.to_list members
            |> List.filter (fun _ -> Rng.bernoulli trng p)
          in
          if senders <> [] then
            ignore (Sinr.resolve_reference sinr ~senders)
        done)
  in
  Fmt.pr
    "reliability n=%d trials=%d   cached %.2fs   seed %.2fs   speedup \
     %.2fx@."
    rel_n trials cached_s reference_s
    (if cached_s > 0. then reference_s /. cached_s else 0.);
  record "phys.bench.reliability.cached.seconds" cached_s;
  record "phys.bench.reliability.reference.seconds" reference_s;
  record "phys.bench.reliability.speedup"
    (if cached_s > 0. then reference_s /. cached_s else 0.);
  (* Far-field sample: the opt-in approximate mode on the largest
     deployment.  Its win is pruning per-sender pow calls, so the natural
     baseline is the seed kernel (the cached table already amortizes the
     pows away; far field is for deployments past the cache budget). *)
  let eps = 0.25 in
  Phys_tuning.set_farfield (Some eps);
  let ff_rate, ref_rate =
    Fun.protect ~finally:(fun () -> Phys_tuning.set_farfield None)
    @@ fun () ->
    let sinr_ff, senders = phys_deployment ~n:1024 in
    ( calls_per_second (fun () -> ignore (Sinr.resolve sinr_ff ~senders)),
      calls_per_second (fun () ->
          ignore (Sinr.resolve_reference sinr_ff ~senders)) )
  in
  Fmt.pr "farfield n=1024 eps=%.2f   %10.0f slots/s   seed %10.0f slots/s   \
          speedup %5.2fx@."
    eps ff_rate ref_rate (ff_rate /. ref_rate);
  record "phys.bench.farfield.eps" eps;
  record "phys.bench.farfield.n1024.slots_per_s" ff_rate;
  record "phys.bench.farfield.n1024.vs_reference_speedup" (ff_rate /. ref_rate);
  let snap =
    List.sort compare !gauges
    |> List.map (fun (name, v) -> (name, Sinr_obs.Metrics.Gauge_v v))
  in
  Sinr_obs.Sink.write_snapshot ~label:"phys-bench" phys_bench_path snap;
  Fmt.pr "[phys bench written: %s]@." phys_bench_path

(* ------------------------------------------------------------------ *)
(* scale: slot throughput and peak RSS at 10^4..10^6 -> BENCH_scale.json *)
(* ------------------------------------------------------------------ *)

(* The million-node gate (DESIGN.md §15): a uniform constant-density
   deployment streamed straight into position columns (never an O(n)
   Point boxing pass), resolved on the auto-installed sparse path, with
   slot throughput and the kernel's RSS high-water mark recorded per
   size.  Sizes run ascending so each VmHWM reading is dominated by the
   run it follows.  SINR_SCALE_NS=10000,100000 lets CI drop the
   million-node size (its absolute gauges are in the diff ignore list
   anyway). *)
let scale_bench_path = "BENCH_scale.json"

(* Expected transmitters per slot: enough concurrent load to exercise the
   sparse kernel's far-field aggregation, capped so the per-slot sender
   work stays O(active) as n grows. *)
let scale_senders ~n = max 64 (min 1000 (n / 333))

let scale_sizes () =
  match Sys.getenv_opt "SINR_SCALE_NS" with
  | None | Some "" -> [ 10_000; 100_000; 1_000_000 ]
  | Some s ->
    let ns =
      String.split_on_char ',' s
      |> List.filter_map int_of_string_opt
      |> List.filter (fun n -> n > 0)
      |> List.sort_uniq compare
    in
    if ns = [] then begin
      Fmt.epr "scale: SINR_SCALE_NS=%S has no positive sizes@." s;
      exit 2
    end;
    ns

let scale_run ~n ~slots =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create 71 in
  (* Constant density: ~20 in-range neighbours per node at R = 12. *)
  let side = 4.4 *. sqrt (float_of_int n) in
  let soa = Soa.create ~n in
  Placement.uniform_stream rng ~n ~box:(Sinr_geom.Box.square ~side)
    ~min_dist:1.
    ~set:(fun i ~x ~y -> Soa.set soa i ~x ~y)
    ~x:(Soa.x soa) ~y:(Soa.y soa);
  let sinr = Sinr.create_soa ~check:false Config.default soa in
  let eng = Sinr_engine.Engine.create sinr in
  Sinr_engine.Engine.wake_all eng;
  let setup_s = Unix.gettimeofday () -. t0 in
  let p = float_of_int (scale_senders ~n) /. float_of_int n in
  let decide v =
    if Rng.hash_unit rng (Sinr_engine.Engine.slot eng) v < p then
      Sinr_engine.Engine.Transmit v
    else Sinr_engine.Engine.Listen
  in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to slots do
    ignore (Sinr_engine.Engine.step eng ~decide)
  done;
  let run_s = Unix.gettimeofday () -. t1 in
  let slots_per_s = float_of_int slots /. Float.max run_s 1e-9 in
  ( slots_per_s,
    setup_s,
    run_s,
    Sinr_engine.Engine.tx_total eng,
    Sinr_engine.Engine.delivery_total eng,
    Sinr.sparse sinr <> None )

let scale_bench () =
  Report.section "scale: slot throughput at 10^4..10^6 nodes";
  let gauges = ref [] in
  let record name v = gauges := (name, v) :: !gauges in
  List.iter
    (fun n ->
      let slots = if n >= 1_000_000 then 100 else 200 in
      let slots_per_s, setup_s, run_s, tx, deliveries, sparse =
        scale_run ~n ~slots
      in
      let rss_mb = Sinr_obs.Procstat.peak_rss_mb () in
      Fmt.pr
        "n=%-8d %d slots in %6.2fs  %8.1f slots/s   setup %6.2fs   tx \
         %d  deliveries %d  sparse %b  peak RSS %s@."
        n slots run_s slots_per_s setup_s tx deliveries sparse
        (match rss_mb with
         | Some mb -> Fmt.str "%.0f MiB" mb
         | None -> "n/a");
      let g fmt = Fmt.str fmt n in
      record (g "scale.bench.n%d.slots_per_s") slots_per_s;
      record (g "scale.bench.n%d.setup_seconds") setup_s;
      record (g "scale.bench.n%d.run_seconds") run_s;
      record (g "scale.bench.n%d.slots") (float_of_int slots);
      record (g "scale.bench.n%d.tx") (float_of_int tx);
      record (g "scale.bench.n%d.deliveries") (float_of_int deliveries);
      record (g "scale.bench.n%d.sparse") (if sparse then 1. else 0.);
      Option.iter (record (g "scale.bench.n%d.peak_rss_mb")) rss_mb)
    (scale_sizes ());
  let snap =
    List.sort compare !gauges
    |> List.map (fun (name, v) -> (name, Sinr_obs.Metrics.Gauge_v v))
  in
  Sinr_obs.Sink.write_snapshot ~label:"scale-bench" scale_bench_path snap;
  Fmt.pr "[scale bench written: %s]@." scale_bench_path

let record_gauge name v =
  Sinr_obs.Metrics.with_enabled (fun () ->
      Sinr_obs.Metrics.set (Sinr_obs.Metrics.gauge name) v)

(* ------------------------------------------------------------------ *)
(* trace-overhead: disabled-tracing cost of the span hooks             *)
(* ------------------------------------------------------------------ *)

(* The one-load-and-branch guarantee (DESIGN.md §11): the span hooks in
   Engine.step / Combined_mac / the B.1 and 9.1 machines must be free
   when the recorder is off.  Clock the same Algorithm 11.1 ack workload
   with the recorder off twice — the relative spread between the two off
   runs is the host's noise floor, and the disabled hook cost has to hide
   inside it — then once with the recorder on for the honest price of
   full tracing.  The gauges land in BENCH_obs.json; `bench diff` gates
   obs.bench.off.spread (band) so a hook creeping out of the branch shows
   up as a regression. *)
let trace_overhead () =
  Report.section "trace-overhead: span hooks off vs on";
  let workload () =
    let rng = Rng.create 61 in
    let pts =
      Placement.uniform rng ~n:48 ~box:(Sinr_geom.Box.square ~side:26.)
        ~min_dist:1.
    in
    let sinr = Sinr.create Config.default pts in
    let senders = List.filter (fun v -> v mod 2 = 0) (List.init 48 Fun.id) in
    ignore
      (Sinr_mac.Measure.acks sinr ~rng:(Rng.create 62) ~senders
         ~max_slots:120_000)
  in
  let time f =
    let t = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t
  in
  workload ();
  (* warm-up: faults code in, fills gain-cache rows *)
  let once = time workload in
  (* One Measure.acks run is a few ms; repeat until the clocks dominate
     scheduler and GC noise. *)
  let reps = max 3 (int_of_float (Float.ceil (0.5 /. Float.max once 1e-4))) in
  let run () =
    for _ = 1 to reps do
      workload ()
    done
  in
  let off1 = time run in
  let off2 = time run in
  let off = Float.min off1 off2 in
  let spread = if off > 0. then Float.abs (off1 -. off2) /. off else 0. in
  Sinr_obs.Recorder.clear ();
  Sinr_obs.Recorder.set_enabled true;
  let traced =
    Fun.protect
      ~finally:(fun () -> Sinr_obs.Recorder.set_enabled false)
      (fun () -> time run)
  in
  let entries = List.length (Sinr_obs.Span.entries ()) in
  let dropped = Sinr_obs.Span.dropped_count () in
  Sinr_obs.Recorder.clear ();
  let ratio = if off > 0. then traced /. off else 0. in
  (* Direct price of the guard itself: every disabled hook reduces to this
     one load-and-branch. *)
  let iters = 20_000_000 in
  let hits = ref 0 in
  let t = Unix.gettimeofday () in
  for _ = 1 to iters do
    if Sinr_obs.Recorder.is_enabled () then incr hits
  done;
  let check_ns =
    (Unix.gettimeofday () -. t) /. float_of_int iters *. 1e9
  in
  assert (!hits = 0);
  Fmt.pr
    "acks workload x%d: off %.3fs / %.3fs (spread %.1f%%)   traced %.3fs \
     (%.2fx)   ring %d entries, %d dropped@."
    reps off1 off2 (100. *. spread) traced ratio entries dropped;
  Fmt.pr "disabled check: %.2f ns/call@." check_ns;
  record_gauge "obs.bench.off.seconds" off;
  record_gauge "obs.bench.off.spread" spread;
  record_gauge "obs.bench.traced.seconds" traced;
  record_gauge "obs.bench.traced_ratio" ratio;
  record_gauge "obs.bench.ring_entries" (float_of_int entries);
  record_gauge "obs.bench.disabled_check.ns" check_ns

(* ------------------------------------------------------------------ *)
(* metrics-overhead: sharded histogram observe vs the seed mutex path  *)
(* ------------------------------------------------------------------ *)

(* The seed registry's histogram observe — a per-histogram mutex around
   plain field updates — kept verbatim as the baseline the sharded path
   (lib/obs/metrics) is measured against. *)
module Mutex_hist = struct
  type t = {
    mutex : Mutex.t;
    mutable count : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;
  }

  let create () =
    { mutex = Mutex.create ();
      count = 0;
      sum = 0.;
      mn = infinity;
      mx = neg_infinity;
      buckets = Array.make Sinr_obs.Metrics.nbuckets 0 }

  let observe h v =
    let v = if Float.is_nan v then 0. else Float.max 0. v in
    Mutex.lock h.mutex;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v;
    let i = Sinr_obs.Metrics.bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    Mutex.unlock h.mutex
end

(* Per-observe cost of the two paths, single-domain and with 4 domains
   hammering the same histogram.  The sharded path must beat the mutex
   path under contention (that is the acceptance gauge,
   obs.bench.metrics.speedup4); absolute ns are recorded but host-specific
   (on a single-core host 4 domains timeshare, so contention shows as
   preempted critical sections rather than cache-line ping-pong — the
   numbers are honest for what this hardware can show). *)
let metrics_overhead () =
  Report.section "metrics-overhead: sharded observe vs seed mutex path";
  let ops = 2_000_000 in
  let value i = float_of_int (i land 1023) in
  let per_op_ns total_ops f =
    let t = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t) /. float_of_int total_ops *. 1e9
  in
  let sharded_loop h n () =
    for i = 1 to n do
      Sinr_obs.Metrics.observe h (value i)
    done
  in
  let mutex_loop h n () =
    for i = 1 to n do
      Mutex_hist.observe h (value i)
    done
  in
  let domains = 4 in
  let spawn_all loop =
    let ds = Array.init domains (fun _ -> Domain.spawn loop) in
    Array.iter Domain.join ds
  in
  (* Sharded path: the real registry, enabled for the duration. *)
  let sharded1, sharded4 =
    Sinr_obs.Metrics.with_enabled @@ fun () ->
    let h = Sinr_obs.Metrics.histogram "bench.mo.sharded" in
    sharded_loop h 10_000 () (* warm-up: shard creation, code faulted in *);
    let s1 = per_op_ns ops (sharded_loop h ops) in
    let s4 =
      per_op_ns (domains * ops) (fun () ->
          spawn_all (fun () -> sharded_loop h ops ()))
    in
    (s1, s4)
  in
  (* Seed mutex path: same loop shape, same bucket math, lock per observe. *)
  let m = Mutex_hist.create () in
  mutex_loop m 10_000 ();
  let mutex1 = per_op_ns ops (mutex_loop m ops) in
  let mutex4 =
    per_op_ns (domains * ops) (fun () ->
        spawn_all (fun () -> mutex_loop m ops ()))
  in
  let speedup1 = if sharded1 > 0. then mutex1 /. sharded1 else 0. in
  let speedup4 = if sharded4 > 0. then mutex4 /. sharded4 else 0. in
  Fmt.pr "observe x%d (1 domain):  sharded %6.1f ns/op   mutex %6.1f ns/op \
          (%.2fx)@."
    ops sharded1 mutex1 speedup1;
  Fmt.pr "observe x%d (%d domains): sharded %6.1f ns/op   mutex %6.1f \
          ns/op  (%.2fx)@."
    ops domains sharded4 mutex4 speedup4;
  record_gauge "obs.bench.metrics.sharded.ns" sharded1;
  record_gauge "obs.bench.metrics.mutex.ns" mutex1;
  record_gauge "obs.bench.metrics.sharded4.ns" sharded4;
  record_gauge "obs.bench.metrics.mutex4.ns" mutex4;
  record_gauge "obs.bench.metrics.speedup1" speedup1;
  record_gauge "obs.bench.metrics.speedup4" speedup4

let experiments =
  [ ("table1-ack", table1_ack);
    ("fig1-progress-lb", fig1_lb);
    ("table1-approg", table1_approg);
    ("thm8-decay", thm8_decay);
    ("table2-smb", table2_smb);
    ("table1-mmb", table1_mmb);
    ("table1-cons", table1_cons);
    ("ablation", ablation);
    ("mac-compare", mac_compare);
    ("capacity", capacity);
    ("chaos", chaos);
    ("micro", micro);
    ("par-bench", par_bench);
    ("phys", phys_bench);
    ("scale", scale_bench);
    ("trace-overhead", trace_overhead);
    ("metrics-overhead", metrics_overhead) ]

(* Machine-readable companion to the printed tables: the telemetry snapshot
   of everything the experiments did, plus wall-time and status gauges per
   experiment.  The [micro] kernels and [par-bench] clocks run with
   telemetry disabled so their numbers measure the uninstrumented hot
   paths (the disabled-overhead guarantee the registry makes is itself
   checked by the sinr_resolve kernel). *)
let obs_path = "BENCH_obs.json"

(* metrics-overhead manages the registry flag itself (it measures the
   enabled path deliberately), so it is "uninstrumented" from the runner's
   point of view. *)
let uninstrumented =
  [ "micro"; "par-bench"; "phys"; "scale"; "trace-overhead";
    "metrics-overhead" ]

(* Leading --jobs N / --jobs=N flags; everything else is experiment ids. *)
let parse_args args =
  let rec go acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Pool.set_default_jobs j
       | Some _ | None ->
         Fmt.epr "bench: --jobs expects a positive integer, got %S@." n;
         exit 2);
      go acc rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      let n = String.sub arg 7 (String.length arg - 7) in
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Pool.set_default_jobs j
       | Some _ | None ->
         Fmt.epr "bench: --jobs expects a positive integer, got %S@." n;
         exit 2);
      go acc rest
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

(* bench diff: the regression gate.  Compares a fresh snapshot against a
   committed baseline (lib/obs/bench_diff.mli documents the per-metric
   direction heuristics) and exits 1 on any Regressed or Missing finding,
   so CI can run `bench phys && bench diff --baseline
   bench/baselines/BENCH_phys.json ...` as a gate.  --current defaults to
   the baseline's basename in the working directory — where the
   experiments write their BENCH_*.json. *)
let diff_mode args =
  let baseline = ref None and current = ref None in
  let tolerance = ref 0.25 and ignores = ref [] in
  let rec go = function
    | [] -> ()
    | "--baseline" :: p :: rest ->
      baseline := Some p;
      go rest
    | "--current" :: p :: rest ->
      current := Some p;
      go rest
    | "--tolerance" :: t :: rest ->
      (match float_of_string_opt t with
       | Some v when v >= 0. -> tolerance := v
       | Some _ | None ->
         Fmt.epr "bench diff: --tolerance expects a non-negative number, \
                  got %S@." t;
         exit 2);
      go rest
    | "--ignore" :: p :: rest ->
      ignores := p :: !ignores;
      go rest
    | arg :: _ ->
      Fmt.epr "bench diff: unknown argument %S@." arg;
      Fmt.epr "usage: bench diff --baseline PATH [--current PATH] \
               [--tolerance T] [--ignore GLOB]...@.";
      exit 2
  in
  go args;
  let baseline_path =
    match !baseline with
    | Some p -> p
    | None ->
      Fmt.epr "bench diff: --baseline PATH is required@.";
      exit 2
  in
  let current_path =
    match !current with
    | Some p -> p
    | None -> Filename.basename baseline_path
  in
  let load path =
    try Sinr_obs.Bench_diff.load_snapshot path with
    | Sys_error msg ->
      Fmt.epr "bench diff: %s@." msg;
      exit 2
    | Failure msg ->
      Fmt.epr "bench diff: %s@." msg;
      exit 2
    | Sinr_obs.Json.Parse_error msg ->
      Fmt.epr "bench diff: %s: malformed JSON: %s@." path msg;
      exit 2
  in
  let b = load baseline_path in
  (* A missing current snapshot is a gate failure (the workload died
     before writing it), not a usage error: report every baseline metric
     as Missing and exit 1, so CI distinguishes "regressed" from "bench
     diff was invoked wrong" (exit 2). *)
  if not (Sys.file_exists current_path) then begin
    let findings =
      Sinr_obs.Bench_diff.missing_current ~ignores:(List.rev !ignores)
        ~baseline:b ()
    in
    Fmt.pr "baseline %s@.current  %s (file missing)@.@." baseline_path
      current_path;
    Fmt.pr "%a" Sinr_obs.Bench_diff.pp_findings findings;
    let regs = Sinr_obs.Bench_diff.regressions findings in
    Fmt.epr "@.bench diff: current snapshot %s is missing — %d metric%s \
             unaccounted@."
      current_path (List.length regs)
      (if List.length regs = 1 then "" else "s");
    exit 1
  end;
  let c = load current_path in
  let findings =
    Sinr_obs.Bench_diff.diff ~tolerance:!tolerance
      ~ignores:(List.rev !ignores) ~baseline:b ~current:c ()
  in
  Fmt.pr "baseline %s@.current  %s@.tolerance %g@.@." baseline_path
    current_path !tolerance;
  Fmt.pr "%a" Sinr_obs.Bench_diff.pp_findings findings;
  match Sinr_obs.Bench_diff.regressions findings with
  | [] -> Fmt.pr "@.bench diff: ok (%d metrics checked)@."
            (List.length findings)
  | regs ->
    Fmt.epr "@.bench diff: %d regression%s@." (List.length regs)
      (if List.length regs = 1 then "" else "s");
    exit 1

let run_experiments args =
  let ids = parse_args args in
  let requested =
    match ids with [] -> List.map fst experiments | ids -> ids
  in
  List.iter
    (fun id ->
      if not (List.mem_assoc id experiments) then begin
        Fmt.epr "unknown experiment %S; known: %s@." id
          (String.concat " " (List.map fst experiments));
        exit 2
      end)
    requested;
  let t0 = Unix.gettimeofday () in
  Fmt.pr "[pool: %d jobs]@." (Pool.default_jobs ());
  let failures = ref [] in
  (* Always leave a snapshot behind, even if an experiment (or the loop
     itself) dies: partial results beat no results. *)
  Fun.protect
    ~finally:(fun () ->
      let snap = Sinr_obs.Metrics.snapshot () in
      Sinr_obs.Sink.write_snapshot ~label:"bench" obs_path snap;
      Fmt.pr "@.[obs snapshot written: %s]@." obs_path;
      Fmt.pr "total wall time: %.1fs@." (Unix.gettimeofday () -. t0))
    (fun () ->
      List.iter
        (fun id ->
          let f = List.assoc id experiments in
          let t = Unix.gettimeofday () in
          let ok =
            try
              if List.mem id uninstrumented then f ()
              else Sinr_obs.Metrics.with_enabled f;
              true
            with e ->
              let bt = Printexc.get_backtrace () in
              Fmt.epr "@.[%s FAILED: %s]@.%s@." id (Printexc.to_string e) bt;
              false
          in
          let dt = Unix.gettimeofday () -. t in
          record_gauge ("bench." ^ id ^ ".seconds") dt;
          record_gauge ("bench." ^ id ^ ".ok") (if ok then 1. else 0.);
          if not ok then failures := id :: !failures;
          Fmt.pr "@.[%s %s in %.1fs]@." id
            (if ok then "done" else "FAILED")
            dt)
        requested);
  match !failures with
  | [] -> ()
  | fs ->
    Fmt.epr "failed experiments: %s@." (String.concat " " (List.rev fs));
    exit 1

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "diff" :: rest -> diff_mode rest
  | args -> run_experiments args
