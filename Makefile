.PHONY: all build check test fmt bench par-smoke chaos-smoke phys-smoke \
        obs-smoke serve-smoke bench-diff clean

all: build

build:
	dune build

# Tier-1 gate: full build + test suite, then a parallel-path smoke run.
check:
	dune build
	dune runtest
	$(MAKE) par-smoke

# Quick end-to-end exercise of the domain pool: one real experiment
# through the parallel sweep at jobs=2 (its rows are asserted
# bit-identical to jobs=1 by the test suite).
par-smoke:
	dune exec bench/main.exe -- --jobs 2 table1-ack

# End-to-end exercise of the fault-injection stack: the full E-chaos
# degradation sweep (writes BENCH_chaos.json), then one heavily
# adversarial single scenario through the CLI.
chaos-smoke:
	dune exec bench/main.exe -- --jobs 2 chaos
	dune exec bin/sinr_sim.exe -- chaos --seed 3 --n 36 --degree 6 \
	  --jam 0.5 --crash-frac 0.2 --abort-rate 0.0005

# End-to-end exercise of the physics fast path: the CLI self-check
# (exits 1 if the cached kernel diverges from the seed kernel), once
# exact and once in the opt-in far-field mode.
phys-smoke:
	dune exec bin/sinr_sim.exe -- phys --seed 3 --n 90 --cases 60
	dune exec bin/sinr_sim.exe -- phys --seed 3 --n 90 --cases 60 \
	  --phys-farfield 0.2

# End-to-end exercise of the tracing layer: a traced run of the full
# Algorithm 11.1 stack dumping a flight-recorder JSONL, then trace-report
# reconstructing per-message ack/progress latencies from it.  --strict
# exits 1 if any message exceeds its Thm 5.1 / Thm 9.1 bound.
obs-smoke:
	dune exec bin/sinr_sim.exe -- obs --seed 3 --n 24 --max-slots 60000 \
	  --trace-out flight-obs.jsonl --prometheus-out obs.prom
	dune exec bin/sinr_sim.exe -- trace-report --strict flight-obs.jsonl

# End-to-end exercise of the live observability plane: run a real sweep
# with the embedded HTTP server up, scrape /metrics and /healthz while it
# runs, and assert the scrape is well-formed Prometheus exposition.  The
# scrape is kept as serve-metrics.prom (uploaded as a CI artifact).  The
# binary is launched directly (not via dune exec) so $$! is the simulator
# pid, not a wrapper.
serve-smoke:
	dune build bin/sinr_sim.exe
	./_build/default/bin/sinr_sim.exe exp table1-ack --serve 9464 \
	  > serve-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -sf http://127.0.0.1:9464/healthz >/dev/null 2>&1; \
	  then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "serve-smoke: server never came up"; \
	  cat serve-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	health=$$(curl -sf http://127.0.0.1:9464/healthz); \
	curl -sf http://127.0.0.1:9464/metrics > serve-metrics.prom; \
	rc=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "serve-smoke: /metrics scrape failed"; exit 1; fi; \
	if [ "$$health" != "ok" ]; then echo "serve-smoke: bad /healthz: $$health"; exit 1; fi; \
	grep -q '^# TYPE engine_slots counter' serve-metrics.prom || \
	  { echo "serve-smoke: /metrics missing engine_slots family"; exit 1; }; \
	awk '!/^#/ && !/^[a-zA-Z0-9_:]+(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$$/ \
	  { print "serve-smoke: bad exposition line: " $$0; bad=1 } END { exit bad }' \
	  serve-metrics.prom; \
	echo "serve-smoke: OK ($$(wc -l < serve-metrics.prom) exposition lines)"

# Bench regression gate: regenerate the machine-portable benchmarks and
# compare them against the committed baselines.  Exits 1 on regression.
# Absolute wall clocks are ignored (machine-dependent); the gate holds the
# speedup ratios and the tracing-overhead gauges, which transfer across
# hosts.  Wide tolerance: CI runners are noisy.
bench-diff:
	dune exec bench/main.exe -- phys trace-overhead metrics-overhead
	dune exec bench/main.exe -- diff \
	  --baseline bench/baselines/BENCH_phys.json --tolerance 0.75 \
	  --ignore '*.slots_per_s' --ignore '*.seconds'
	dune exec bench/main.exe -- diff \
	  --baseline bench/baselines/BENCH_obs.json --tolerance 0.75 \
	  --ignore '*.seconds' --ignore '*.ns' --ignore '*.spread' \
	  --ignore '*.ring_entries'

test: check

fmt:
	dune fmt

bench:
	dune exec bench/main.exe

clean:
	dune clean
