.PHONY: all build check test fmt bench clean

all: build

build:
	dune build

# Tier-1 gate: full build + test suite.
check:
	dune build
	dune runtest

test: check

fmt:
	dune fmt

bench:
	dune exec bench/main.exe

clean:
	dune clean
