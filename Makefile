.PHONY: all build check test fmt bench par-smoke chaos-smoke phys-smoke \
        obs-smoke serve-smoke daemon-smoke crash-smoke scale-smoke \
        stream-smoke bench-diff clean

all: build

build:
	dune build

# Tier-1 gate: full build + test suite, then a parallel-path smoke run.
check:
	dune build
	dune runtest
	$(MAKE) par-smoke

# Quick end-to-end exercise of the domain pool: one real experiment
# through the parallel sweep at jobs=2 (its rows are asserted
# bit-identical to jobs=1 by the test suite).
par-smoke:
	dune exec bench/main.exe -- --jobs 2 table1-ack

# End-to-end exercise of the fault-injection stack: the full E-chaos
# degradation sweep (writes BENCH_chaos.json), then one heavily
# adversarial single scenario through the CLI.
chaos-smoke:
	dune exec bench/main.exe -- --jobs 2 chaos
	dune exec bin/sinr_sim.exe -- chaos --seed 3 --n 36 --degree 6 \
	  --jam 0.5 --crash-frac 0.2 --abort-rate 0.0005

# End-to-end exercise of the physics fast path: the CLI self-check
# (exits 1 if the cached kernel diverges from the seed kernel), once
# exact and once in the opt-in far-field mode.
phys-smoke:
	dune exec bin/sinr_sim.exe -- phys --seed 3 --n 90 --cases 60
	dune exec bin/sinr_sim.exe -- phys --seed 3 --n 90 --cases 60 \
	  --phys-farfield 0.2

# End-to-end exercise of the tracing layer: a traced run of the full
# Algorithm 11.1 stack dumping a flight-recorder JSONL, then trace-report
# reconstructing per-message ack/progress latencies from it.  --strict
# exits 1 if any message exceeds its Thm 5.1 / Thm 9.1 bound.
obs-smoke:
	dune exec bin/sinr_sim.exe -- obs --seed 3 --n 24 --max-slots 60000 \
	  --trace-out flight-obs.jsonl --prometheus-out obs.prom
	dune exec bin/sinr_sim.exe -- trace-report --strict flight-obs.jsonl

# End-to-end exercise of the live observability plane: run a real sweep
# with the embedded HTTP server up, scrape /metrics and /healthz while it
# runs, and assert the scrape is well-formed Prometheus exposition.  The
# scrape is kept as serve-metrics.prom (uploaded as a CI artifact).  The
# binary is launched directly (not via dune exec) so $$! is the simulator
# pid, not a wrapper.
serve-smoke:
	dune build bin/sinr_sim.exe
	rm -f serve-port.txt; \
	./_build/default/bin/sinr_sim.exe exp table1-ack --serve 0 \
	  --serve-port-file serve-port.txt \
	  > serve-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s serve-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "serve-smoke: port file never appeared"; \
	  cat serve-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat serve-port.txt); \
	health=$$(curl -sf http://127.0.0.1:$$port/healthz); \
	curl -sf http://127.0.0.1:$$port/metrics > serve-metrics.prom; \
	rc=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "serve-smoke: /metrics scrape failed"; exit 1; fi; \
	case "$$health" in *'"status":"ok"'*) ;; \
	  *) echo "serve-smoke: bad /healthz: $$health"; exit 1;; esac; \
	grep -q '^# TYPE engine_slots counter' serve-metrics.prom || \
	  { echo "serve-smoke: /metrics missing engine_slots family"; exit 1; }; \
	awk '!/^#/ && !/^[a-zA-Z0-9_:]+(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$$/ \
	  { print "serve-smoke: bad exposition line: " $$0; bad=1 } END { exit bad }' \
	  serve-metrics.prom; \
	echo "serve-smoke: OK ($$(wc -l < serve-metrics.prom) exposition lines)"

# End-to-end exercise of the sweep daemon: start `sinr_sim serve` on a
# kernel-picked port (read back via the port file), POST a tiny exp_ack
# sweep, observe queue backpressure (the second job must 429 against
# --queue-cap 1 and show up in serve_jobs_rejected), poll the job to
# done, feed the live /spans scrape to trace-report --strict, then drain
# gracefully with SIGTERM and require exit 0.  Artifacts: daemon-smoke.log,
# daemon-metrics.prom, daemon-spans.jsonl and the daemon-smoke-dir
# checkpoints.
daemon-smoke:
	dune build bin/sinr_sim.exe
	rm -rf daemon-smoke-dir daemon-port.txt; \
	./_build/default/bin/sinr_sim.exe serve --port 0 \
	  --serve-port-file daemon-port.txt --dir daemon-smoke-dir \
	  --queue-cap 1 --checkpoint-every 2 --jobs 2 \
	  > daemon-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s daemon-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "daemon-smoke: port file never appeared"; \
	  cat daemon-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat daemon-port.txt); \
	code=$$(curl -s -o /dev/null -w '%{http_code}' \
	  -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2,3,4],"seeds":[1,2,3],"tag":"smoke"}'); \
	if [ "$$code" != "202" ]; then echo "daemon-smoke: submit got $$code"; \
	  cat daemon-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' \
	  -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2],"seeds":[1]}'); \
	if [ "$$code" != "429" ]; then \
	  echo "daemon-smoke: expected 429 backpressure, got $$code"; \
	  kill $$pid 2>/dev/null; exit 1; fi; \
	done_=0; for i in $$(seq 1 240); do \
	  if curl -sf http://127.0.0.1:$$port/jobs/1 | grep -q '"state":"done"'; \
	  then done_=1; break; fi; sleep 0.5; done; \
	if [ $$done_ -ne 1 ]; then echo "daemon-smoke: job never finished"; \
	  curl -s http://127.0.0.1:$$port/jobs; cat daemon-smoke.log; \
	  kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sf http://127.0.0.1:$$port/jobs/1 | grep -q '"table"' || \
	  { echo "daemon-smoke: done job has no table"; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:$$port/metrics > daemon-metrics.prom; \
	curl -sf http://127.0.0.1:$$port/spans > daemon-spans.jsonl; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	if [ $$rc -ne 0 ]; then \
	  echo "daemon-smoke: drain exited $$rc, want 0"; \
	  cat daemon-smoke.log; exit 1; fi; \
	grep -q '^serve_jobs_rejected [1-9]' daemon-metrics.prom || \
	  { echo "daemon-smoke: rejection not visible in serve.* metrics"; \
	    exit 1; }; \
	grep -q '^serve_jobs_completed [1-9]' daemon-metrics.prom || \
	  { echo "daemon-smoke: completion not visible in serve.* metrics"; \
	    exit 1; }; \
	ls daemon-smoke-dir/serve-smoke.ckpt.jsonl >/dev/null || \
	  { echo "daemon-smoke: checkpoint file missing"; exit 1; }; \
	grep -q '\[drained' daemon-smoke.log || \
	  { echo "daemon-smoke: no drain confirmation in log"; exit 1; }; \
	dune exec bin/sinr_sim.exe -- trace-report --strict daemon-spans.jsonl; \
	echo "daemon-smoke: OK"

# Crash-tolerance gate for the daemon: start `sinr_sim serve`, submit a
# sweep, SIGKILL the process mid-grid (a failpoint slows every cell so
# the kill window is wide), restart on the same --dir/--wal-dir, and
# require (a) the WAL recovery banner, (b) the job runs to done, and
# (c) its table is byte-identical (cmp) to an uninterrupted reference
# run in a fresh directory.  Artifacts: crash-smoke.log, crash-table.json,
# crash-table-ref.json and the crash-smoke-dir WAL + checkpoints.
crash-smoke:
	dune build bin/sinr_sim.exe
	rm -rf crash-smoke-dir crash-ref-dir crash-port.txt \
	  crash-table.json crash-table-ref.json; \
	SINR_FAILPOINTS=serve.cell=sleep:0.3 \
	./_build/default/bin/sinr_sim.exe serve --port 0 \
	  --serve-port-file crash-port.txt --dir crash-smoke-dir \
	  --wal-dir crash-smoke-dir --checkpoint-every 1 --jobs 2 \
	  > crash-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s crash-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "crash-smoke: port file never appeared"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat crash-port.txt); \
	code=$$(curl -s -o /dev/null -w '%{http_code}' \
	  -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2,3,4],"seeds":[1,2,3],"tag":"crash"}'); \
	if [ "$$code" != "202" ]; then echo "crash-smoke: submit got $$code"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	mid=0; for i in $$(seq 1 600); do \
	  s=$$(curl -s http://127.0.0.1:$$port/jobs/1); \
	  case "$$s" in *'"state":"done"'*) break;; esac; \
	  case "$$s" in *'"cells_done":0'*) sleep 0.1;; \
	    *) mid=1; break;; esac; done; \
	if [ $$mid -ne 1 ]; then echo "crash-smoke: never caught the job mid-grid"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	rm -f crash-port.txt; \
	./_build/default/bin/sinr_sim.exe serve --port 0 \
	  --serve-port-file crash-port.txt --dir crash-smoke-dir \
	  --wal-dir crash-smoke-dir --checkpoint-every 1 --jobs 2 \
	  >> crash-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s crash-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "crash-smoke: restart never came up"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat crash-port.txt); \
	grep -q 'wal: 1 job recovered' crash-smoke.log || \
	  { echo "crash-smoke: no recovery banner after restart"; \
	    cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; }; \
	done_=0; for i in $$(seq 1 240); do \
	  if curl -sf http://127.0.0.1:$$port/jobs/1 | grep -q '"state":"done"'; \
	  then done_=1; break; fi; sleep 0.5; done; \
	if [ $$done_ -ne 1 ]; then echo "crash-smoke: recovered job never finished"; \
	  curl -s http://127.0.0.1:$$port/jobs; cat crash-smoke.log; \
	  kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sf http://127.0.0.1:$$port/jobs/1/table > crash-table.json || \
	  { echo "crash-smoke: table fetch failed"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	if [ $$rc -ne 0 ]; then echo "crash-smoke: drain exited $$rc, want 0"; \
	  cat crash-smoke.log; exit 1; fi; \
	rm -f crash-port.txt; \
	./_build/default/bin/sinr_sim.exe serve --port 0 \
	  --serve-port-file crash-port.txt --dir crash-ref-dir \
	  --checkpoint-every 1 --jobs 2 \
	  >> crash-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s crash-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "crash-smoke: reference run never came up"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat crash-port.txt); \
	curl -s -o /dev/null -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2,3,4],"seeds":[1,2,3],"tag":"crash"}'; \
	done_=0; for i in $$(seq 1 240); do \
	  if curl -sf http://127.0.0.1:$$port/jobs/1 | grep -q '"state":"done"'; \
	  then done_=1; break; fi; sleep 0.5; done; \
	if [ $$done_ -ne 1 ]; then echo "crash-smoke: reference job never finished"; \
	  cat crash-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sf http://127.0.0.1:$$port/jobs/1/table > crash-table-ref.json; \
	kill -TERM $$pid; wait $$pid 2>/dev/null; \
	cmp crash-table.json crash-table-ref.json || \
	  { echo "crash-smoke: table after SIGKILL+restart differs from the \
	    uninterrupted reference"; exit 1; }; \
	echo "crash-smoke: OK (tables byte-identical across SIGKILL)"

# End-to-end exercise of the per-job observability plane: start the
# daemon (a failpoint slows every cell so the stream has time to show
# live progress), submit a grid, follow it with `curl -N` on the SSE
# endpoint, and require (a) at least one live `cell` event lands before
# the terminal done state, (b) the stream closes itself after the job
# settles, (c) /jobs/1/metrics is well-formed Prometheus exposition
# scoped to job_id="1" with the right cell count, and (d) `sinr_sim
# watch` on a second job rebuilds, from SSE alone, a table byte-identical
# to GET /jobs/2/table.  Artifacts: stream-smoke.log, stream-events.log,
# stream-job-metrics.prom.
stream-smoke:
	dune build bin/sinr_sim.exe
	rm -rf stream-smoke-dir stream-port.txt stream-events.log \
	  stream-watch-table.json stream-curl-table.json; \
	SINR_FAILPOINTS=serve.cell=sleep:0.1 \
	./_build/default/bin/sinr_sim.exe serve --port 0 \
	  --serve-port-file stream-port.txt --dir stream-smoke-dir \
	  --checkpoint-every 2 --jobs 2 \
	  > stream-smoke.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if [ -s stream-port.txt ]; then up=1; break; fi; sleep 0.1; done; \
	if [ $$up -ne 1 ]; then echo "stream-smoke: port file never appeared"; \
	  cat stream-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	port=$$(cat stream-port.txt); \
	code=$$(curl -s -o /dev/null -w '%{http_code}' \
	  -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2,3,4],"seeds":[1,2,3],"tag":"stream"}'); \
	if [ "$$code" != "202" ]; then echo "stream-smoke: submit got $$code"; \
	  cat stream-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sN http://127.0.0.1:$$port/jobs/1/events > stream-events.log & \
	cpid=$$!; \
	done_=0; for i in $$(seq 1 240); do \
	  if curl -sf http://127.0.0.1:$$port/jobs/1 | grep -q '"state":"done"'; \
	  then done_=1; break; fi; sleep 0.5; done; \
	if [ $$done_ -ne 1 ]; then echo "stream-smoke: job never finished"; \
	  cat stream-smoke.log; kill $$cpid $$pid 2>/dev/null; exit 1; fi; \
	closed=0; for i in $$(seq 1 100); do \
	  if ! kill -0 $$cpid 2>/dev/null; then closed=1; break; fi; \
	  sleep 0.1; done; \
	if [ $$closed -ne 1 ]; then \
	  echo "stream-smoke: stream never closed after the terminal state"; \
	  kill $$cpid $$pid 2>/dev/null; exit 1; fi; \
	wait $$cpid 2>/dev/null; \
	grep -q '^event: cell' stream-events.log || \
	  { echo "stream-smoke: no live cell event in the stream"; \
	    cat stream-events.log; kill $$pid 2>/dev/null; exit 1; }; \
	awk '/^event: cell/ && !c { c = NR } \
	     /^event: state/ { s = NR } \
	     /"state":"done"/ { done_line = NR } \
	     END { exit !(c && done_line && c < done_line) }' \
	  stream-events.log || \
	  { echo "stream-smoke: no cell event before the job was done"; \
	    cat stream-events.log; kill $$pid 2>/dev/null; exit 1; }; \
	grep -q '^event: row' stream-events.log || \
	  { echo "stream-smoke: no row event in the stream"; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:$$port/jobs/1/metrics \
	  > stream-job-metrics.prom || \
	  { echo "stream-smoke: /jobs/1/metrics scrape failed"; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	grep -q '^serve_cells_done{job_id="1"} 9' stream-job-metrics.prom || \
	  { echo "stream-smoke: per-job cell counter wrong or missing"; \
	    cat stream-job-metrics.prom; kill $$pid 2>/dev/null; exit 1; }; \
	awk '!/^#/ && !/^[a-zA-Z0-9_:]+(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$$/ \
	  { print "stream-smoke: bad exposition line: " $$0; bad=1 } \
	  END { exit bad }' stream-job-metrics.prom; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' \
	  -X POST http://127.0.0.1:$$port/jobs \
	  -d '{"exp":"ack","params":[2,3],"seeds":[1,2],"tag":"stream2"}'); \
	if [ "$$code" != "202" ]; then echo "stream-smoke: second submit got $$code"; \
	  kill $$pid 2>/dev/null; exit 1; fi; \
	./_build/default/bin/sinr_sim.exe watch 2 --port-file stream-port.txt \
	  > stream-watch-table.json 2>> stream-smoke.log || \
	  { echo "stream-smoke: watch client failed"; cat stream-smoke.log; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:$$port/jobs/2/table > stream-curl-table.json; \
	cmp stream-watch-table.json stream-curl-table.json || \
	  { echo "stream-smoke: watch table differs from GET /jobs/2/table"; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	if [ $$rc -ne 0 ]; then echo "stream-smoke: drain exited $$rc, want 0"; \
	  cat stream-smoke.log; exit 1; fi; \
	echo "stream-smoke: OK (live SSE, per-job metrics, watch == table)"

# End-to-end exercise of the million-node path: a short n=10^5 run on the
# streamed-placement + sparse-resolution engine with a conservative
# slots/s floor (CI runners are slow and noisy; this host does 60+) and a
# generous RSS cap (the acceptance budget is 8 GiB at n=10^6; 10^5 needs
# well under 2 GiB).
scale-smoke:
	dune exec bin/sinr_sim.exe -- scale --n 100000 --slots 50 \
	  --assert-slots-per-s 10 --assert-rss-mb 2048

# Bench regression gate: regenerate the machine-portable benchmarks and
# compare them against the committed baselines.  Exits 1 on regression.
# Absolute wall clocks are ignored (machine-dependent); the gate holds the
# speedup ratios and the tracing-overhead gauges, which transfer across
# hosts.  Wide tolerance: CI runners are noisy.  The scale leg skips the
# million-node size (SINR_SCALE_NS) and ignores every machine-dependent
# absolute (throughput, RSS, wall clocks) — what it gates is the
# deterministic workload shape: tx/delivery counts and the sparse-path
# installation flag.
bench-diff:
	SINR_SCALE_NS=10000,100000 dune exec bench/main.exe -- \
	  phys trace-overhead metrics-overhead scale
	dune exec bench/main.exe -- diff \
	  --baseline bench/baselines/BENCH_phys.json --tolerance 0.75 \
	  --ignore '*.slots_per_s' --ignore '*.seconds'
	dune exec bench/main.exe -- diff \
	  --baseline bench/baselines/BENCH_obs.json --tolerance 0.75 \
	  --ignore '*.seconds' --ignore '*.ns' --ignore '*.spread' \
	  --ignore '*.ring_entries'
	dune exec bench/main.exe -- diff \
	  --baseline bench/baselines/BENCH_scale.json --tolerance 0.25 \
	  --ignore '*.slots_per_s' --ignore '*_seconds' \
	  --ignore '*.peak_rss_mb' --ignore 'scale.bench.n1000000.*'

test: check

fmt:
	dune fmt

bench:
	dune exec bench/main.exe

clean:
	dune clean
