.PHONY: all build check test fmt bench par-smoke clean

all: build

build:
	dune build

# Tier-1 gate: full build + test suite, then a parallel-path smoke run.
check:
	dune build
	dune runtest
	$(MAKE) par-smoke

# Quick end-to-end exercise of the domain pool: one real experiment
# through the parallel sweep at jobs=2 (its rows are asserted
# bit-identical to jobs=1 by the test suite).
par-smoke:
	dune exec bench/main.exe -- --jobs 2 table1-ack

test: check

fmt:
	dune fmt

bench:
	dune exec bench/main.exe

clean:
	dune clean
